package brb

// PR 9 ordering tests for the continuation-style commit path (run under
// -race by the Makefile's race target): with commit verification fanned
// out as detached continuations on a work-stealing lane runtime — no
// coordinator goroutines — per-origin FIFO and exactly-once delivery
// must survive concurrent origins AND a concurrent stream of
// NACK-triggered resends, which re-inject full commits for instances the
// receivers have already committed or are mid-verification on.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"astro/internal/crypto/verifier"
	"astro/internal/sched"
	"astro/internal/transport"
	"astro/internal/types"
)

func TestSignedContinuationOrderingUnderNackResends(t *testing.T) {
	for name, eager := range map[string]bool{"lazy": false, "eager": true} {
		t.Run(name, func(t *testing.T) {
			rt := sched.New(4)
			t.Cleanup(rt.Close)
			pool := verifier.New(0, verifier.WithRuntime(rt))
			t.Cleanup(pool.Close)
			h := newHarness(t, protoSigned, 4, func(c *Config) {
				c.Verifier = pool
				c.EagerChainDefs = eager
			})

			const per = 12
			var origins sync.WaitGroup
			for r := 0; r < 4; r++ {
				origins.Add(1)
				go func(r int) {
					defer origins.Done()
					for i := 0; i < per; i++ {
						if _, err := h.bcs[r].Broadcast([]byte(fmt.Sprintf("r%d-m%d", r, i))); err != nil {
							panic(err)
						}
					}
				}(r)
			}

			// The storm: members 3 and 1 NACK a chain digest that no
			// definition will ever satisfy, against slots that cycle
			// through the live range. Committed instances answer with a
			// full (tabled) resend — a duplicate COMMIT the receiver must
			// dedupe mid-stream; uncommitted ones clear their sent-sets,
			// racing the origin's own definition bookkeeping.
			stop := make(chan struct{})
			var storm sync.WaitGroup
			storm.Add(1)
			go func() {
				defer storm.Done()
				ghost := types.HashBytes([]byte("no-such-chain"))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					slot := uint64(i%per + 1)
					nack := EncodeChainNack(0, slot, []types.Digest{ghost})
					_ = h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, nack)
					nack = EncodeChainNack(2, slot, []types.Digest{ghost})
					_ = h.muxes[1].Send(transport.ReplicaNode(2), transport.ChanBRB, nack)
					time.Sleep(200 * time.Microsecond)
				}
			}()

			want := 4 * 4 * per
			if got := h.waitDeliveries(want, 30*time.Second); got != want {
				t.Fatalf("deliveries = %d, want %d", got, want)
			}
			origins.Wait()
			close(stop)
			storm.Wait()
			// Let in-flight resends land before the exactly-once audit.
			time.Sleep(100 * time.Millisecond)

			for r := 0; r < 4; r++ {
				slots := make(map[types.ReplicaID][]uint64)
				for _, d := range h.deliveriesAt(types.ReplicaID(r)) {
					slots[d.origin] = append(slots[d.origin], d.slot)
				}
				for o := 0; o < 4; o++ {
					got := slots[types.ReplicaID(o)]
					if len(got) != per {
						t.Fatalf("replica %d delivered origin %d %d times, want %d (exactly-once violated)",
							r, o, len(got), per)
					}
					for i, s := range got {
						if s != uint64(i+1) {
							t.Fatalf("replica %d, origin %d: delivery %d has slot %d — FIFO violated",
								r, o, i, s)
						}
					}
				}
			}
		})
	}
}
