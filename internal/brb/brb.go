// Package brb implements Byzantine reliable broadcast (BRB), the
// replication primitive at the heart of Astro. Two protocols are provided,
// matching the paper's two system variants:
//
//   - Bracha: the echo/ready protocol of Bracha & Toueg used by Astro I.
//     O(N²) messages per broadcast, MAC-authenticated links, provides
//     totality.
//   - Signed: the signature-based protocol (after Malkhi & Reiter) used by
//     Astro II. O(N) messages: the origin gathers a Byzantine quorum of
//     signed ACKs into a COMMIT certificate. No totality — the payment
//     layer compensates with CREDIT dependency certificates.
//
// Both protocols deliver payloads per origin in slot order (FIFO), exactly
// like the paper's per-client sequence-number delivery rule, and both
// guarantee agreement per (origin, slot): no two correct replicas deliver
// different payloads for the same identifier.
//
// An external-validity hook lets the payment layer refuse to endorse
// payloads containing payments that conflict with previously endorsed ones
// (the double-spend check when batching).
package brb

import (
	"errors"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// Validator decides whether this replica endorses (echoes or acks) the
// payload proposed for an instance. Returning false withholds this
// replica's contribution; a payload endorsed by fewer than a quorum of
// replicas is never delivered anywhere.
type Validator func(origin types.ReplicaID, slot uint64, payload []byte) bool

// DeliverFunc receives delivered payloads, per origin in slot order.
type DeliverFunc func(origin types.ReplicaID, slot uint64, payload []byte)

// Broadcaster is the common interface of both BRB implementations.
type Broadcaster interface {
	// Broadcast reliably sends payload to all replicas, assigning it the
	// next slot of this replica's sequence. It returns the assigned slot.
	// Implementations copy payload before returning, so callers may reuse
	// (or pool) their buffers.
	Broadcast(payload []byte) (uint64, error)
	// Delivered returns the highest slot delivered for an origin.
	Delivered(origin types.ReplicaID) uint64
}

// Config carries the parameters shared by both protocols.
type Config struct {
	// Mux is the node's transport multiplexer; the protocol registers
	// itself on transport.ChanBRB.
	Mux *transport.Mux
	// Self is this replica's identity.
	Self types.ReplicaID
	// Peers lists all replicas participating in the broadcast group
	// (including Self). For sharded deployments this is the shard.
	Peers []types.ReplicaID
	// F is the number of Byzantine replicas tolerated; len(Peers) must be
	// at least 3F+1.
	F int
	// Validator is the external-validity hook; nil accepts everything.
	Validator Validator
	// Deliver receives delivered payloads. Must be non-nil.
	Deliver DeliverFunc

	// Auth authenticates links with pairwise MACs (Astro I). Optional;
	// when set, every protocol message carries an HMAC tag, costing the
	// MAC computation the paper attributes to Bracha's protocol.
	Auth *crypto.LinkAuthenticator

	// Keys and Registry supply the signing key and peer public keys for
	// the signature-based protocol (required by Signed, ignored by
	// Bracha).
	Keys     *crypto.KeyPair
	Registry *crypto.Registry

	// Verifier is the worker pool the signature-based protocol uses to
	// verify ack signatures and commit certificates off the transport
	// dispatch goroutine. Nil selects the shared process-wide pool
	// (verifier.Default). Ignored by Bracha, which verifies nothing.
	Verifier *verifier.Verifier

	// FirstSlot seeds this replica's own broadcast sequence: the first
	// Broadcast is assigned FirstSlot+1. A replica restarting from a WAL
	// sets it to the highest slot it ever reserved, so it never reuses a
	// slot its peers may already have acknowledged under a different
	// payload (they would silently refuse the second digest). Zero — the
	// default — starts at slot 1.
	FirstSlot uint64

	// Unordered switches delivery from per-origin slot order to arrival
	// order (Signed only). A replica recovering from a crash cannot rely
	// on peers retransmitting commits for slots delivered while it was
	// down — the signed protocol has no retransmission — so insisting on
	// per-origin FIFO would wedge every origin with a gap. The payment
	// layer's settlement engine orders payments by client sequence number
	// independently, so it tolerates out-of-order slot delivery; only a
	// recovering replica should set this.
	Unordered bool

	// CommitSpawn selects the PR 1–8 goroutine-per-commit coordinators
	// (Signed only): each inbound commit spawns a goroutine that blocks on
	// the fanned-out certificate verification. Off — the default — commit
	// verification is continuation-style: the completion callback re-enters
	// the FIFO delivery drain on whichever lane finishes the tally, and
	// steady-state settlement spawns zero goroutines per commit. Kept as
	// the measured baseline, per the PR 1–5 convention.
	CommitSpawn bool

	// EagerChainDefs restores the PR 4 behavior of sending every CHAINDEF
	// ahead of the first COMMITREF that references it (Signed only). Off —
	// the default — definitions are lazy: references go out immediately and
	// a chain is defined only when a receiver demands it (CHAINNACK),
	// saving the definitions receivers never need (each replica already
	// knows its own chains, and a chain learned from any peer resolves
	// references from every origin). Kept as the measured baseline.
	EagerChainDefs bool
}

// Errors returned by Broadcast.
var (
	ErrNoQuorum  = errors.New("brb: fewer than 3f+1 peers")
	ErrNoDeliver = errors.New("brb: Deliver callback not set")
)

func (c *Config) validate() error {
	if len(c.Peers) < 3*c.F+1 {
		return ErrNoQuorum
	}
	if c.Deliver == nil {
		return ErrNoDeliver
	}
	return nil
}

func (c *Config) quorum() int { return 2*c.F + 1 }

// instanceID identifies one broadcast instance.
type instanceID struct {
	origin types.ReplicaID
	slot   uint64
}

// Message kinds on ChanBRB.
const (
	kindPrepare byte = 1
	kindEcho    byte = 2
	kindReady   byte = 3
	kindAck     byte = 4
	kindCommit  byte = 5
	// Batch-level ack signing (Signed only): one signature over a hash
	// chain of pending instances, and commits whose certificates carry
	// such chain signatures. See ackchain.go.
	kindAckBatch    byte = 6
	kindCommitBatch byte = 7
	// Chain-by-digest references (Signed only): a chain transmitted once
	// per destination (CHAINDEF), commits whose certificates reference it
	// by digest (COMMITREF), and the cache-miss fallback (CHAINNACK). See
	// chainref.go.
	kindChainDef  byte = 8
	kindCommitRef byte = 9
	kindChainNack byte = 10
	// Tabled commit (Signed only): a COMMITBATCH whose certificate interns
	// its chains in one message-level table, each signature naming its
	// chain by index — the PR 9 self-contained form that never repeats a
	// chain inside a message. Legacy kindCommitBatch stays decodable. See
	// committab.go.
	kindCommitTab byte = 11
)

// headerSize is the fixed prefix of every BRB message: kind, origin, slot.
const headerSize = 1 + 4 + 8

// appendHeader writes the common message prefix.
func appendHeader(w *wire.Writer, kind byte, origin types.ReplicaID, slot uint64) {
	w.U8(kind)
	w.U32(uint32(origin))
	w.U64(slot)
}

// payloadMsgSize is the exact size of a PREPARE/ECHO/READY message.
func payloadMsgSize(payload []byte) int { return headerSize + 4 + len(payload) }

func appendPayloadMsg(w *wire.Writer, kind byte, origin types.ReplicaID, slot uint64, payload []byte) {
	appendHeader(w, kind, origin, slot)
	w.Chunk(payload)
}

// EncodePrepare encodes a PREPARE message. Exported for tests that forge
// Byzantine traffic.
func EncodePrepare(origin types.ReplicaID, slot uint64, payload []byte) []byte {
	w := wire.NewWriter(payloadMsgSize(payload))
	appendPayloadMsg(w, kindPrepare, origin, slot, payload)
	return w.Bytes()
}

// EncodeEcho encodes an ECHO message (Bracha). Exported for tests.
func EncodeEcho(origin types.ReplicaID, slot uint64, payload []byte) []byte {
	w := wire.NewWriter(payloadMsgSize(payload))
	appendPayloadMsg(w, kindEcho, origin, slot, payload)
	return w.Bytes()
}

// EncodeReady encodes a READY message (Bracha). Exported for tests.
func EncodeReady(origin types.ReplicaID, slot uint64, payload []byte) []byte {
	w := wire.NewWriter(payloadMsgSize(payload))
	appendPayloadMsg(w, kindReady, origin, slot, payload)
	return w.Bytes()
}

// ackSize is the exact size of an ACK message.
func ackSize(sig []byte) int { return headerSize + 32 + 4 + len(sig) }

func appendAck(w *wire.Writer, origin types.ReplicaID, slot uint64, digest types.Digest, sig []byte) {
	appendHeader(w, kindAck, origin, slot)
	w.Bytes32(digest)
	w.Chunk(sig)
}

// EncodeAck encodes an ACK message (Signed). Exported for tests.
func EncodeAck(origin types.ReplicaID, slot uint64, digest types.Digest, sig []byte) []byte {
	w := wire.NewWriter(ackSize(sig))
	appendAck(w, origin, slot, digest, sig)
	return w.Bytes()
}

// commitSize is the exact size of a COMMIT message.
func commitSize(payload []byte, cert crypto.Certificate) int {
	return headerSize + 4 + len(payload) + crypto.CertificateSize(cert)
}

func appendCommit(w *wire.Writer, origin types.ReplicaID, slot uint64, payload []byte, cert crypto.Certificate) {
	appendHeader(w, kindCommit, origin, slot)
	w.Chunk(payload)
	crypto.EncodeCertificate(w, cert)
}

// EncodeCommit encodes a COMMIT message (Signed). Exported for tests.
func EncodeCommit(origin types.ReplicaID, slot uint64, payload []byte, cert crypto.Certificate) []byte {
	w := wire.NewWriter(commitSize(payload, cert))
	appendCommit(w, origin, slot, payload, cert)
	return w.Bytes()
}

// SignedDigest computes the digest a replica signs when acknowledging an
// instance in the signature-based protocol. The domain byte prevents
// cross-protocol signature reuse.
func SignedDigest(origin types.ReplicaID, slot uint64, payload []byte) types.Digest {
	ph := types.HashBytes(payload)
	w := wire.AcquireWriter(1 + 4 + 8 + 32)
	defer w.Release()
	w.U8(0x42) // domain: brb-ack
	w.U32(uint32(origin))
	w.U64(slot)
	w.Bytes32(ph)
	return types.HashBytes(w.Bytes())
}

// fifo tracks per-origin delivery order, buffering out-of-order deliveries.
type fifo struct {
	delivered map[types.ReplicaID]uint64
	pending   map[instanceID][]byte
}

func newFIFO() *fifo {
	return &fifo{
		delivered: make(map[types.ReplicaID]uint64),
		pending:   make(map[instanceID][]byte),
	}
}

// ready records a deliverable payload and returns the consecutive run now
// deliverable for that origin, in slot order.
type delivery struct {
	origin  types.ReplicaID
	slot    uint64
	payload []byte
}

func (f *fifo) ready(id instanceID, payload []byte) []delivery {
	if id.slot <= f.delivered[id.origin] {
		return nil // stale duplicate
	}
	if _, dup := f.pending[id]; dup {
		return nil
	}
	f.pending[id] = payload
	var out []delivery
	next := f.delivered[id.origin] + 1
	for {
		p, ok := f.pending[instanceID{origin: id.origin, slot: next}]
		if !ok {
			break
		}
		delete(f.pending, instanceID{origin: id.origin, slot: next})
		out = append(out, delivery{origin: id.origin, slot: next, payload: p})
		f.delivered[id.origin] = next
		next++
	}
	return out
}
