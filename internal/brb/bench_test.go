package brb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// benchGroup builds an n-replica broadcast group and returns the
// broadcasters plus a waiter for total deliveries.
func benchGroup(b *testing.B, proto protocol, n int) ([]Broadcaster, func(int)) {
	b.Helper()
	net := memnet.New()
	b.Cleanup(net.Close)
	return benchGroupWithNet(b, proto, n, net)
}

func benchBroadcast(b *testing.B, proto protocol, n int) {
	bcs, wait := benchGroup(b, proto, n)
	payload := make([]byte, 8192) // a 256-payment batch
	// Bound the number of in-flight broadcasts: unbounded flooding can
	// fill the simulated network's bounded inboxes faster than the
	// single-threaded dispatchers drain them.
	const window = 64
	b.ResetTimer()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, err := bcs[0].Broadcast(payload); err != nil {
			b.Fatal(err)
		}
		if i >= window {
			wait((i - window + 1) * n)
		}
	}
	done := make(chan struct{})
	go func() {
		wait(b.N * n)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatal("deliveries timed out")
	}
}

func BenchmarkBrachaN4(b *testing.B)  { benchBroadcast(b, protoBracha, 4) }
func BenchmarkBrachaN10(b *testing.B) { benchBroadcast(b, protoBracha, 10) }
func BenchmarkSignedN4(b *testing.B)  { benchBroadcast(b, protoSigned, 4) }
func BenchmarkSignedN10(b *testing.B) { benchBroadcast(b, protoSigned, 10) }

// BenchmarkMessageComplexity reports messages per broadcast for both
// protocols at N=10 — the O(N²) vs O(N) gap of §IV-A.
func BenchmarkMessageComplexity(b *testing.B) {
	for _, tc := range []struct {
		name  string
		proto protocol
	}{{"bracha", protoBracha}, {"signed", protoSigned}} {
		b.Run(tc.name, func(b *testing.B) {
			net := memnet.New()
			defer net.Close()
			bcs, wait := benchGroupWithNet(b, tc.proto, 10, net)
			net.ResetStats()
			b.ResetTimer()
			// Self-paced: wait for each broadcast to deliver everywhere
			// before issuing the next, so the in-flight instance count
			// stays bounded regardless of b.N.
			for i := 0; i < b.N; i++ {
				if _, err := bcs[0].Broadcast([]byte(fmt.Sprintf("m%d", i))); err != nil {
					b.Fatal(err)
				}
				wait((i + 1) * 10)
			}
			b.StopTimer()
			b.ReportMetric(float64(net.Stats().MessagesSent)/float64(b.N), "msgs/broadcast")
		})
	}
}

func benchGroupWithNet(b *testing.B, proto protocol, n int, net *memnet.Network) ([]Broadcaster, func(int)) {
	b.Helper()
	peers := make([]types.ReplicaID, n)
	for i := range peers {
		peers[i] = types.ReplicaID(i)
	}
	var mu sync.Mutex
	delivered := 0
	cond := sync.NewCond(&mu)
	var registry *crypto.Registry
	var keys []*crypto.KeyPair
	if proto == protoSigned {
		registry = crypto.NewRegistry()
		master := []byte("bench")
		registry.EnableSim(master)
		for i := 0; i < n; i++ {
			keys = append(keys, crypto.NewSimKeyPair(types.ReplicaID(i), master))
			registry.AddSim(types.ReplicaID(i))
		}
	}
	var bcs []Broadcaster
	for i := 0; i < n; i++ {
		mux := transport.NewMux(net.Node(transport.ReplicaNode(types.ReplicaID(i))))
		cfg := Config{
			Mux: mux, Self: types.ReplicaID(i), Peers: peers, F: types.MaxFaults(n),
			Deliver: func(types.ReplicaID, uint64, []byte) {
				mu.Lock()
				delivered++
				cond.Broadcast()
				mu.Unlock()
			},
		}
		var bc Broadcaster
		var err error
		if proto == protoSigned {
			cfg.Keys = keys[i]
			cfg.Registry = registry
			bc, err = NewSigned(cfg)
		} else {
			bc, err = NewBracha(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		bcs = append(bcs, bc)
	}
	wait := func(total int) {
		mu.Lock()
		for delivered < total {
			cond.Wait()
		}
		mu.Unlock()
	}
	return bcs, wait
}
