package brb

// Tests for batch-level ack signing: the pool-side signer (no ECDSA on a
// dispatch goroutine, chains amortizing one signature over many
// instances), the chain/extended-certificate codecs, and the commit
// verification rules for chain signatures.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
	"astro/internal/wire"
)

func TestAckChainCodecRoundTrip(t *testing.T) {
	chain := []ChainEntry{
		{Origin: 3, Slot: 17, Digest: types.HashBytes([]byte("a"))},
		{Origin: 0, Slot: 1, Digest: types.HashBytes([]byte("b"))},
	}
	sig := []byte("not-a-real-signature")
	msg := EncodeAckBatch(chain, sig)
	if len(msg) != ackBatchSize(chain, sig) {
		t.Fatalf("encoded size %d, want exact %d", len(msg), ackBatchSize(chain, sig))
	}
	r := wire.NewReader(msg)
	if k := r.U8(); k != kindAckBatch {
		t.Fatalf("kind = %d", k)
	}
	got, err := decodeChain(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chain) {
		t.Fatalf("chain length %d, want %d", len(got), len(chain))
	}
	for i := range chain {
		if got[i] != chain[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], chain[i])
		}
	}
	if !bytes.Equal(r.Chunk(), sig) || r.Finish() != nil {
		t.Fatal("signature round trip failed")
	}

	cert := AckCert{Sigs: []AckSig{
		{Replica: 1, Sig: []byte("s1")},               // single-slot
		{Replica: 2, Sig: []byte("s2"), Chain: chain}, // chain-signed
	}}
	w := wire.NewWriter(ackCertSize(cert))
	appendAckCert(w, cert)
	if w.Len() != ackCertSize(cert) {
		t.Fatalf("cert size %d, want exact %d", w.Len(), ackCertSize(cert))
	}
	rc := wire.NewReader(w.Bytes())
	back, err := decodeAckCert(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sigs) != 2 || back.Sigs[0].Chain != nil || len(back.Sigs[1].Chain) != 2 {
		t.Fatalf("cert round trip: %+v", back)
	}
	if AckChainDigest(chain) != AckChainDigest(back.Sigs[1].Chain) {
		t.Fatal("chain digest changed across codec round trip")
	}
}

func TestAckChainDigestDomainSeparation(t *testing.T) {
	// A chain of one entry must not collide with the entry's own ack
	// digest, or a single-slot signature could be replayed as a chain
	// signature (and vice versa).
	d := SignedDigest(1, 1, []byte("payload"))
	chain := []ChainEntry{{Origin: 1, Slot: 1, Digest: d}}
	if AckChainDigest(chain) == d {
		t.Fatal("chain digest equals single-slot ack digest")
	}
}

// asyncSignFixture is a lone Signed replica (id 1 of a 4-group) on a real
// mux, with a dedicated 1-worker pool the test can wedge, and a raw
// endpoint at the origin's address (id 0) capturing what the replica
// sends back.
type asyncSignFixture struct {
	net      *memnet.Network
	pool     *verifier.Verifier
	registry *crypto.Registry
	keys     []*crypto.KeyPair
	replica  *Signed
	mux      *transport.Mux // the replica's mux
	origin   *transport.Mux // endpoint 0, capturing acks
	brbMsgs  chan []byte    // raw ChanBRB traffic arriving at the origin
}

func newAsyncSignFixture(t *testing.T) *asyncSignFixture {
	t.Helper()
	fx := &asyncSignFixture{
		net:      memnet.New(),
		pool:     verifier.New(1),
		registry: crypto.NewRegistry(),
		brbMsgs:  make(chan []byte, 64),
	}
	t.Cleanup(fx.net.Close)
	t.Cleanup(fx.pool.Close)
	var peers []types.ReplicaID
	for i := 0; i < 4; i++ {
		kp := crypto.MustGenerateKeyPair()
		fx.keys = append(fx.keys, kp)
		fx.registry.Add(types.ReplicaID(i), kp.Public())
		peers = append(peers, types.ReplicaID(i))
	}
	fx.mux = transport.NewMux(fx.net.Node(transport.ReplicaNode(1)))
	t.Cleanup(fx.mux.Close)
	var err error
	fx.replica, err = NewSigned(Config{
		Mux:      fx.mux,
		Self:     1,
		Peers:    peers,
		F:        1,
		Deliver:  func(types.ReplicaID, uint64, []byte) {},
		Keys:     fx.keys[1],
		Registry: fx.registry,
		Verifier: fx.pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.origin = transport.NewMux(fx.net.Node(transport.ReplicaNode(0)))
	t.Cleanup(fx.origin.Close)
	fx.origin.Register(transport.ChanBRB, func(_ transport.NodeID, p []byte) {
		buf := make([]byte, len(p))
		copy(buf, p)
		fx.brbMsgs <- buf
	})
	return fx
}

// wedgePool occupies the fixture's single worker until the returned
// release function is called.
func (fx *asyncSignFixture) wedgePool() (release func()) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	go fx.pool.Async(func() {
		close(entered)
		<-gate
	})
	<-entered
	return func() { close(gate) }
}

// TestSignedNoAckSignOnDispatchGoroutine is the acceptance test for the
// async sign path: with the sign pool wedged, a PREPARE must not produce
// an ack (nobody can sign), yet delivery on OTHER channels of the same
// endpoint proceeds — proving the dispatch goroutines neither sign nor
// wait on the signer. The ack appears, correctly signed, once the pool
// frees up.
func TestSignedNoAckSignOnDispatchGoroutine(t *testing.T) {
	fx := newAsyncSignFixture(t)
	release := fx.wedgePool()

	payload := []byte("batch-1")
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodePrepare(0, 1, payload)); err != nil {
		t.Fatal(err)
	}

	// Payment traffic to the same endpoint keeps flowing while the BRB
	// sign path is wedged.
	pay := make(chan struct{}, 1)
	fx.mux.Register(transport.ChanPayment, func(transport.NodeID, []byte) { pay <- struct{}{} })
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanPayment, []byte("submit")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pay:
	case <-time.After(2 * time.Second):
		t.Fatal("payment delivery blocked while the sign pool was wedged")
	}

	// No ack can have been produced: the only worker is wedged and
	// dispatch goroutines never sign.
	select {
	case m := <-fx.brbMsgs:
		t.Fatalf("ack emitted while the sign pool was wedged (kind %d)", m[0])
	case <-time.After(100 * time.Millisecond):
	}

	release()
	select {
	case m := <-fx.brbMsgs:
		r := wire.NewReader(m)
		if k := r.U8(); k != kindAck {
			t.Fatalf("kind = %d, want single-slot ack", k)
		}
		if types.ReplicaID(r.U32()) != 0 || r.U64() != 1 {
			t.Fatal("ack for wrong instance")
		}
		digest := r.Bytes32()
		sig := r.Chunk()
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
		want := SignedDigest(0, 1, payload)
		if digest != want {
			t.Fatal("ack digest mismatch")
		}
		if !fx.registry.VerifySig(1, want, sig) {
			t.Fatal("ack signature does not verify against replica 1's key")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ack never arrived after the pool was released")
	}
}

// TestSignedChainSignsPendingAcks wedges the pool, delivers several
// prepares, and releases: everything pending must go out under ONE
// signature — a kindAckBatch whose chain covers every instance — and the
// signer stats must show the amortization.
func TestSignedChainSignsPendingAcks(t *testing.T) {
	fx := newAsyncSignFixture(t)
	release := fx.wedgePool()

	const k = 5
	payloads := make([][]byte, k)
	for i := 0; i < k; i++ {
		payloads[i] = []byte(fmt.Sprintf("batch-%d", i+1))
		if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodePrepare(0, uint64(i+1), payloads[i])); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until all k acks are queued at the signer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		pending := fx.replica.ackSigner.Pending()
		if pending == k {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending acks = %d, want %d", pending, k)
		}
		time.Sleep(time.Millisecond)
	}

	release()
	select {
	case m := <-fx.brbMsgs:
		r := wire.NewReader(m)
		if kind := r.U8(); kind != kindAckBatch {
			t.Fatalf("kind = %d, want ack batch", kind)
		}
		chain, err := decodeChain(r)
		if err != nil {
			t.Fatal(err)
		}
		sig := r.Chunk()
		if r.Finish() != nil {
			t.Fatal("trailing bytes in ack batch")
		}
		if len(chain) != k {
			t.Fatalf("chain covers %d instances, want %d", len(chain), k)
		}
		for i, e := range chain {
			want := ChainEntry{Origin: 0, Slot: uint64(i + 1), Digest: SignedDigest(0, uint64(i+1), payloads[i])}
			if e != want {
				t.Fatalf("chain[%d] = %+v, want %+v", i, e, want)
			}
		}
		if !fx.registry.VerifySig(1, AckChainDigest(chain), sig) {
			t.Fatal("chain signature does not verify")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ack batch after release")
	}
	if ops, acks := fx.replica.AckSignStats(); ops != 1 || acks != k {
		t.Fatalf("sign stats ops=%d acks=%d, want 1 ECDSA covering %d acks", ops, acks, k)
	}
}

// chainCommitFor builds a commit whose certificate consists of chain
// signatures by replicas 0, 1, 2 over the given chain.
func chainCommitFor(t *testing.T, h *harness, origin types.ReplicaID, slot uint64, payload []byte, chain []ChainEntry) []byte {
	t.Helper()
	cd := AckChainDigest(chain)
	var cert AckCert
	for _, r := range []types.ReplicaID{0, 1, 2} {
		sig, err := h.keys[r].Sign(cd)
		if err != nil {
			t.Fatal(err)
		}
		cert.Sigs = append(cert.Sigs, AckSig{Replica: r, Sig: sig, Chain: chain})
	}
	return EncodeCommitBatch(origin, slot, payload, cert)
}

// TestSignedCommitBatchDelivers: a commit whose quorum consists of chain
// signatures covering the instance delivers like a plain one.
func TestSignedCommitBatchDelivers(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	payload := []byte("chained")
	chain := []ChainEntry{
		{Origin: 3, Slot: 1, Digest: SignedDigest(3, 1, payload)},
		{Origin: 2, Slot: 9, Digest: types.HashBytes([]byte("unrelated"))}, // extra entries are fine
	}
	commit := chainCommitFor(t, h, 3, 1, payload, chain)
	if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, commit); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(1, 5*time.Second); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
	d := h.deliveriesAt(0)
	if len(d) != 1 || string(d[0].payload) != "chained" || d[0].origin != 3 || d[0].slot != 1 {
		t.Fatalf("delivery = %+v", d)
	}
}

// TestSignedCommitBatchRejectsChainMissingInstance: chain signatures are
// endorsements of exactly the instances the chain lists — a quorum of
// perfectly valid chain signatures whose chain does NOT carry the
// committed instance must be rejected.
func TestSignedCommitBatchRejectsChainMissingInstance(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	payload := []byte("stolen")
	chain := []ChainEntry{
		// Valid-looking entries, none of them for (origin 3, slot 1, payload).
		{Origin: 3, Slot: 2, Digest: SignedDigest(3, 2, payload)},
		{Origin: 1, Slot: 1, Digest: SignedDigest(1, 1, payload)},
	}
	commit := chainCommitFor(t, h, 3, 1, payload, chain)
	if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, commit); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(1, 300*time.Millisecond); got != 0 {
		t.Fatalf("commit with non-covering chain delivered: %d", got)
	}
}

// TestSignedCommitBatchRejectsWrongDigestEntry: the chain carries an entry
// for the right instance but over a different payload digest — the
// signature endorses *that* payload, not the committed one.
func TestSignedCommitBatchRejectsWrongDigestEntry(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	payload := []byte("real")
	chain := []ChainEntry{
		{Origin: 3, Slot: 1, Digest: SignedDigest(3, 1, []byte("forged"))},
	}
	commit := chainCommitFor(t, h, 3, 1, payload, chain)
	if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, commit); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(1, 300*time.Millisecond); got != 0 {
		t.Fatalf("commit with wrong-digest chain entry delivered: %d", got)
	}
}

// TestSignedCommitBatchDuplicateSignersDontCount: three copies of one
// replica's chain signature are one endorsement, not a quorum.
func TestSignedCommitBatchDuplicateSignersDontCount(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	payload := []byte("dups")
	chain := []ChainEntry{{Origin: 3, Slot: 1, Digest: SignedDigest(3, 1, payload)}}
	sig, err := h.keys[0].Sign(AckChainDigest(chain))
	if err != nil {
		t.Fatal(err)
	}
	var cert AckCert
	for i := 0; i < 3; i++ {
		cert.Sigs = append(cert.Sigs, AckSig{Replica: 0, Sig: sig, Chain: chain})
	}
	commit := EncodeCommitBatch(3, 1, payload, cert)
	if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, commit); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(1, 300*time.Millisecond); got != 0 {
		t.Fatalf("duplicate-signer certificate delivered: %d", got)
	}
}

// TestSignedBatchedSettlementEndToEnd wedges a shared 1-worker pool while
// a burst of broadcasts goes out, then releases it: every replica's
// pending acks leave as chains, the origin assembles chain certificates,
// commits verify (one ECDSA per signer per chain, memoized across the
// whole burst), and every replica delivers the full burst in FIFO order.
func TestSignedBatchedSettlementEndToEnd(t *testing.T) {
	pool := verifier.New(1)
	defer pool.Close()
	h := newHarness(t, protoSigned, 4, func(c *Config) { c.Verifier = pool })

	gate := make(chan struct{})
	entered := make(chan struct{})
	go pool.Async(func() {
		close(entered)
		<-gate
	})
	<-entered

	const k = 6
	for i := 1; i <= k; i++ {
		if _, err := h.bcs[0].Broadcast([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let the prepares land at every replica while the signer is wedged,
	// so the release finds full pending queues.
	waitPending := func(s *Signed) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := s.ackSigner.Pending()
			if n == k {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("pending acks = %d, want %d", n, k)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, bc := range h.bcs {
		waitPending(bc.(*Signed))
	}
	close(gate)

	want := 4 * k
	if got := h.waitDeliveries(want, 15*time.Second); got != want {
		t.Fatalf("deliveries = %d, want %d", got, want)
	}
	for r := 0; r < 4; r++ {
		d := h.deliveriesAt(types.ReplicaID(r))
		for i, dv := range d {
			if dv.slot != uint64(i+1) || string(dv.payload) != fmt.Sprintf("m%d", i+1) {
				t.Fatalf("replica %d delivery %d = slot %d %q", r, i, dv.slot, dv.payload)
			}
		}
	}
	// Amortization: every replica signed its k acks with one ECDSA.
	for i, bc := range h.bcs {
		ops, acks := bc.(*Signed).AckSignStats()
		if acks != k || ops != 1 {
			t.Fatalf("replica %d sign stats ops=%d acks=%d, want ops=1 acks=%d", i, ops, acks, k)
		}
	}
}
