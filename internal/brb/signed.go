package brb

import (
	"errors"
	"fmt"
	"sync"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// Signed implements BRB with digital signatures (after Malkhi & Reiter),
// the broadcast layer of Astro II (paper §IV-A, Listing 6).
//
// Per instance: the origin PREPAREs the payload to all replicas; each
// replica signs an ACK for the first payload it sees for the instance
// (subject to the validator) and unicasts it back to the origin; on
// gathering a Byzantine quorum (2f+1) of valid ACKs the origin sends a
// COMMIT carrying the payload and the aggregated certificate; replicas
// verify the certificate and deliver, in per-origin slot order.
//
// Message complexity is O(N) — the all-to-all phases of Bracha are
// replaced by unicasts to and from the origin — at the price of signature
// computation. The protocol does not provide totality: if the origin is
// faulty, some correct replicas may deliver while others never do. Astro II
// compensates at the payment layer with CREDIT dependency certificates.
//
// Signature verification — the dominant CPU cost of the protocol, which
// the paper amortizes with 256-payment batches (§VI-A) — runs on the
// configured verifier pool, not on the transport dispatch goroutine:
//
//   - ack signatures arriving at the origin are checked asynchronously and
//     re-enter the state machine through a completion callback;
//   - commit certificates are fanned out across the pool (with 2f+1
//     early exit) from a per-commit goroutine, and delivery re-enters the
//     state machine on completion.
//
// Because verifications may complete out of order, deliveries are staged
// through the per-origin FIFO under the instance lock and then drained by
// a single logical deliverer, so the Deliver callback still observes the
// paper's per-origin slot order.
type Signed struct {
	cfg Config
	ver *verifier.Verifier
	// commitSem bounds in-flight commit verifications. Acquiring it can
	// block the dispatch goroutine — deliberately: that is the same
	// backpressure inline verification used to provide, so a Byzantine
	// peer streaming fabricated commits saturates a bounded pipeline
	// instead of spawning unbounded goroutines. Honest commits are never
	// dropped, only delayed.
	commitSem chan struct{}

	mu      sync.Mutex
	nextOut uint64
	mine    map[uint64]*outInstance   // my in-flight broadcasts, by slot
	acked   map[instanceID]*ackRecord // instances I have acknowledged
	order   *fifo
	// committing marks instances with a certificate verification in
	// flight, so re-delivered commits don't spawn duplicate work.
	committing map[instanceID]struct{}
	// deliverQ and delivering serialize the Deliver callback: whichever
	// completion appends first drains the queue, so deliveries exit in
	// exactly the order the FIFO released them even when certificate
	// verifications finish out of order.
	deliverQ   []delivery
	delivering bool
}

var _ Broadcaster = (*Signed)(nil)

type outInstance struct {
	payload   []byte
	digest    types.Digest
	cert      crypto.Certificate
	committed bool
}

type ackRecord struct {
	digest    types.Digest
	delivered bool
}

// Errors specific to the signed protocol.
var ErrNoKeys = errors.New("brb: signed protocol requires Keys and Registry")

// NewSigned creates the protocol instance and registers it on the mux's
// BRB channel.
func NewSigned(cfg Config) (*Signed, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Keys == nil || cfg.Registry == nil {
		return nil, ErrNoKeys
	}
	ver := cfg.Verifier
	if ver == nil {
		ver = verifier.Default()
	}
	s := &Signed{
		cfg:        cfg,
		ver:        ver,
		commitSem:  make(chan struct{}, 2*ver.Workers()+2),
		mine:       make(map[uint64]*outInstance),
		acked:      make(map[instanceID]*ackRecord),
		order:      newFIFO(),
		committing: make(map[instanceID]struct{}),
	}
	cfg.Mux.Register(transport.ChanBRB, s.onMessage)
	return s, nil
}

// Broadcast implements Broadcaster.
func (s *Signed) Broadcast(payload []byte) (uint64, error) {
	s.mu.Lock()
	s.nextOut++
	slot := s.nextOut
	buf := make([]byte, len(payload))
	copy(buf, payload)
	s.mine[slot] = &outInstance{
		payload: buf,
		digest:  SignedDigest(s.cfg.Self, slot, payload),
	}
	s.mu.Unlock()

	w := wire.AcquireWriter(payloadMsgSize(payload))
	appendPayloadMsg(w, kindPrepare, s.cfg.Self, slot, payload)
	for _, p := range s.cfg.Peers {
		_ = s.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanBRB, w.Bytes())
	}
	w.Release()
	return slot, nil
}

// Delivered implements Broadcaster.
func (s *Signed) Delivered(origin types.ReplicaID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.delivered[origin]
}

func (s *Signed) onMessage(from transport.NodeID, payload []byte) {
	peer := types.ReplicaID(from)
	r := wire.NewReader(payload)
	kind := r.U8()
	origin := types.ReplicaID(r.U32())
	slot := r.U64()
	if r.Err() != nil {
		return
	}
	id := instanceID{origin: origin, slot: slot}
	switch kind {
	case kindPrepare:
		if peer != origin {
			return // spoofed prepare
		}
		body := r.Chunk()
		if r.Err() != nil {
			return
		}
		s.handlePrepare(id, body)
	case kindAck:
		digest := r.Bytes32()
		sig := r.Chunk()
		if r.Err() != nil {
			return
		}
		s.handleAck(id, peer, digest, sig)
	case kindCommit:
		body := r.Chunk()
		cert, err := crypto.DecodeCertificate(r)
		if err != nil || r.Err() != nil {
			return
		}
		s.handleCommit(id, body, cert)
	}
}

// handlePrepare acknowledges the first (and only the first) payload seen
// for the instance — the equivocation check of Listing 6.
func (s *Signed) handlePrepare(id instanceID, payload []byte) {
	d := SignedDigest(id.origin, id.slot, payload)

	s.mu.Lock()
	if _, seen := s.acked[id]; seen {
		s.mu.Unlock()
		return // already acknowledged (same or conflicting); stay silent
	}
	s.mu.Unlock()

	// The validator runs outside the instance lock: the payment layer's
	// hook verifies a whole batch of client signatures on the pool and
	// blocks for the results, and completion callbacks taking s.mu must
	// stay able to run meanwhile.
	if s.cfg.Validator != nil && !s.cfg.Validator(id.origin, id.slot, payload) {
		return
	}

	s.mu.Lock()
	if _, seen := s.acked[id]; seen {
		// A commit for this instance finished verifying while the
		// validator ran; its record wins and this replica stays silent.
		s.mu.Unlock()
		return
	}
	s.acked[id] = &ackRecord{digest: d}
	s.mu.Unlock()

	sig, err := s.cfg.Keys.Sign(d)
	if err != nil {
		return // entropy failure; withholding an ack is always safe
	}
	w := wire.AcquireWriter(ackSize(sig))
	appendAck(w, id.origin, id.slot, d, sig)
	_ = s.cfg.Mux.Send(transport.ReplicaNode(id.origin), transport.ChanBRB, w.Bytes())
	w.Release()
}

// handleAck runs at the origin: it performs the cheap instance checks
// inline, then hands the signature to the verifier pool. Certificate
// assembly — and the COMMIT, once a quorum accrues — happens in the
// completion callback.
func (s *Signed) handleAck(id instanceID, peer types.ReplicaID, digest types.Digest, sig []byte) {
	if id.origin != s.cfg.Self {
		return // ack for someone else's instance; misdirected
	}

	s.mu.Lock()
	out := s.mine[id.slot]
	if out == nil || out.committed || digest != out.digest {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Signature checks dominate CPU cost: run them on the pool, off the
	// dispatch goroutine and outside the instance lock. Re-sent acks hit
	// the verifier's memo and resolve inline.
	s.ver.VerifyReplicaDetached(s.cfg.Registry, peer, digest, sig, func(ok bool) {
		if ok {
			s.ackVerified(id, peer, digest, sig)
		}
	})
}

// ackVerified re-enters the state machine after an ack signature checks
// out: record it, and commit on reaching the quorum.
func (s *Signed) ackVerified(id instanceID, peer types.ReplicaID, digest types.Digest, sig []byte) {
	s.mu.Lock()
	out := s.mine[id.slot]
	if out == nil || out.committed || digest != out.digest {
		s.mu.Unlock()
		return
	}
	out.cert.Add(crypto.PartialSig{Replica: peer, Sig: sig})
	commit := out.cert.Len() >= s.cfg.quorum()
	if commit {
		out.committed = true
	}
	payload := out.payload
	cert := out.cert
	s.mu.Unlock()

	if commit {
		w := wire.AcquireWriter(commitSize(payload, cert))
		appendCommit(w, id.origin, id.slot, payload, cert)
		for _, p := range s.cfg.Peers {
			_ = s.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanBRB, w.Bytes())
		}
		w.Release()
	}
}

// handleCommit performs the cheap duplicate checks inline, then verifies
// the certificate on the pool — fanned out across workers with 2f+1 early
// exit — and delivers in FIFO order from the completion path.
func (s *Signed) handleCommit(id instanceID, payload []byte, cert crypto.Certificate) {
	s.mu.Lock()
	if rec := s.acked[id]; rec != nil && rec.delivered {
		s.mu.Unlock()
		return
	}
	if _, busy := s.committing[id]; busy {
		s.mu.Unlock()
		return // a verification for this instance is already in flight
	}
	s.committing[id] = struct{}{}
	s.mu.Unlock()

	// The coordinator needs its own goroutine: it blocks on the fanned-out
	// signature checks, and the dispatch goroutine must stay free to pump
	// messages (including the very acks/commits the pool is verifying).
	// Digest computation (a hash over the full batch payload) moves off
	// the dispatch goroutine with it. The semaphore bounds how many such
	// coordinators exist at once (no lock is held here, so blocking is
	// safe).
	s.commitSem <- struct{}{}
	go func() {
		defer func() { <-s.commitSem }()
		d := SignedDigest(id.origin, id.slot, payload)
		err := s.ver.VerifyCertificate(s.cfg.Registry, cert, d, s.cfg.quorum(), s.membership)
		s.commitVerified(id, d, payload, err == nil)
	}()
}

// commitVerified re-enters the state machine after certificate
// verification: on success it marks the instance delivered, releases the
// consecutive run from the per-origin FIFO, and drains the delivery queue.
// A failed verification only clears the in-flight marker, so a later
// well-formed commit for the instance can still be processed.
func (s *Signed) commitVerified(id instanceID, d types.Digest, payload []byte, ok bool) {
	s.mu.Lock()
	delete(s.committing, id)
	if !ok {
		s.mu.Unlock()
		return // invalid or insufficient certificate
	}
	rec := s.acked[id]
	if rec == nil {
		rec = &ackRecord{digest: d}
		s.acked[id] = rec
	}
	if rec.delivered {
		s.mu.Unlock()
		return
	}
	rec.delivered = true
	s.deliverQ = append(s.deliverQ, s.order.ready(id, payload)...)
	if s.delivering {
		// Another completion is draining; it will pick these up, in order.
		s.mu.Unlock()
		return
	}
	s.delivering = true
	for len(s.deliverQ) > 0 {
		batch := s.deliverQ
		s.deliverQ = nil
		s.mu.Unlock()
		for _, dv := range batch {
			s.cfg.Deliver(dv.origin, dv.slot, dv.payload)
		}
		s.mu.Lock()
	}
	s.delivering = false
	s.mu.Unlock()
}

func (s *Signed) membership(id types.ReplicaID) bool {
	for _, p := range s.cfg.Peers {
		if p == id {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer for diagnostics.
func (s *Signed) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("signedbrb{self=%d peers=%d f=%d out=%d}", s.cfg.Self, len(s.cfg.Peers), s.cfg.F, s.nextOut)
}
