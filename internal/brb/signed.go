package brb

import (
	"errors"
	"fmt"
	"sync"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// Signed implements BRB with digital signatures (after Malkhi & Reiter),
// the broadcast layer of Astro II (paper §IV-A, Listing 6).
//
// Per instance: the origin PREPAREs the payload to all replicas; each
// replica signs an ACK for the first payload it sees for the instance
// (subject to the validator) and unicasts it back to the origin; on
// gathering a Byzantine quorum (2f+1) of valid ACKs the origin sends a
// COMMIT carrying the payload and the aggregated certificate; replicas
// verify the certificate and deliver, in per-origin slot order.
//
// Message complexity is O(N) — the all-to-all phases of Bracha are
// replaced by unicasts to and from the origin — at the price of signature
// computation. The protocol does not provide totality: if the origin is
// faulty, some correct replicas may deliver while others never do. Astro II
// compensates at the payment layer with CREDIT dependency certificates.
type Signed struct {
	cfg Config

	mu      sync.Mutex
	nextOut uint64
	mine    map[uint64]*outInstance   // my in-flight broadcasts, by slot
	acked   map[instanceID]*ackRecord // instances I have acknowledged
	order   *fifo
}

var _ Broadcaster = (*Signed)(nil)

type outInstance struct {
	payload   []byte
	digest    types.Digest
	cert      crypto.Certificate
	committed bool
}

type ackRecord struct {
	digest    types.Digest
	delivered bool
}

// Errors specific to the signed protocol.
var ErrNoKeys = errors.New("brb: signed protocol requires Keys and Registry")

// NewSigned creates the protocol instance and registers it on the mux's
// BRB channel.
func NewSigned(cfg Config) (*Signed, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Keys == nil || cfg.Registry == nil {
		return nil, ErrNoKeys
	}
	s := &Signed{
		cfg:   cfg,
		mine:  make(map[uint64]*outInstance),
		acked: make(map[instanceID]*ackRecord),
		order: newFIFO(),
	}
	cfg.Mux.Register(transport.ChanBRB, s.onMessage)
	return s, nil
}

// Broadcast implements Broadcaster.
func (s *Signed) Broadcast(payload []byte) (uint64, error) {
	s.mu.Lock()
	s.nextOut++
	slot := s.nextOut
	buf := make([]byte, len(payload))
	copy(buf, payload)
	s.mine[slot] = &outInstance{
		payload: buf,
		digest:  SignedDigest(s.cfg.Self, slot, payload),
	}
	s.mu.Unlock()

	msg := EncodePrepare(s.cfg.Self, slot, payload)
	for _, p := range s.cfg.Peers {
		_ = s.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanBRB, msg)
	}
	return slot, nil
}

// Delivered implements Broadcaster.
func (s *Signed) Delivered(origin types.ReplicaID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.delivered[origin]
}

func (s *Signed) onMessage(from transport.NodeID, payload []byte) {
	peer := types.ReplicaID(from)
	r := wire.NewReader(payload)
	kind := r.U8()
	origin := types.ReplicaID(r.U32())
	slot := r.U64()
	if r.Err() != nil {
		return
	}
	id := instanceID{origin: origin, slot: slot}
	switch kind {
	case kindPrepare:
		if peer != origin {
			return // spoofed prepare
		}
		body := r.Chunk()
		if r.Err() != nil {
			return
		}
		s.handlePrepare(id, body)
	case kindAck:
		digest := r.Bytes32()
		sig := r.Chunk()
		if r.Err() != nil {
			return
		}
		s.handleAck(id, peer, digest, sig)
	case kindCommit:
		body := r.Chunk()
		cert, err := crypto.DecodeCertificate(r)
		if err != nil || r.Err() != nil {
			return
		}
		s.handleCommit(id, body, cert)
	}
}

// handlePrepare acknowledges the first (and only the first) payload seen
// for the instance — the equivocation check of Listing 6.
func (s *Signed) handlePrepare(id instanceID, payload []byte) {
	d := SignedDigest(id.origin, id.slot, payload)

	s.mu.Lock()
	if rec, seen := s.acked[id]; seen {
		s.mu.Unlock()
		_ = rec // already acknowledged (same or conflicting); stay silent
		return
	}
	if s.cfg.Validator != nil && !s.cfg.Validator(id.origin, id.slot, payload) {
		s.mu.Unlock()
		return
	}
	s.acked[id] = &ackRecord{digest: d}
	s.mu.Unlock()

	sig, err := s.cfg.Keys.Sign(d)
	if err != nil {
		return // entropy failure; withholding an ack is always safe
	}
	msg := EncodeAck(id.origin, id.slot, d, sig)
	_ = s.cfg.Mux.Send(transport.ReplicaNode(id.origin), transport.ChanBRB, msg)
}

// handleAck runs at the origin: gather a quorum of valid signatures, then
// commit.
func (s *Signed) handleAck(id instanceID, peer types.ReplicaID, digest types.Digest, sig []byte) {
	if id.origin != s.cfg.Self {
		return // ack for someone else's instance; misdirected
	}

	s.mu.Lock()
	out := s.mine[id.slot]
	if out == nil || out.committed || digest != out.digest {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Verify outside the lock: signature checks dominate CPU cost.
	if !s.cfg.Registry.VerifySig(peer, digest, sig) {
		return
	}

	s.mu.Lock()
	if out.committed {
		s.mu.Unlock()
		return
	}
	out.cert.Add(crypto.PartialSig{Replica: peer, Sig: sig})
	commit := out.cert.Len() >= s.cfg.quorum()
	if commit {
		out.committed = true
	}
	payload := out.payload
	cert := out.cert
	s.mu.Unlock()

	if commit {
		msg := EncodeCommit(id.origin, id.slot, payload, cert)
		for _, p := range s.cfg.Peers {
			_ = s.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanBRB, msg)
		}
	}
}

// handleCommit verifies the certificate and delivers in FIFO order.
func (s *Signed) handleCommit(id instanceID, payload []byte, cert crypto.Certificate) {
	s.mu.Lock()
	if rec := s.acked[id]; rec != nil && rec.delivered {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	d := SignedDigest(id.origin, id.slot, payload)
	if err := crypto.VerifyCertificate(s.cfg.Registry, cert, d, s.cfg.quorum(), s.membership); err != nil {
		return // invalid or insufficient certificate
	}

	s.mu.Lock()
	rec := s.acked[id]
	if rec == nil {
		rec = &ackRecord{digest: d}
		s.acked[id] = rec
	}
	if rec.delivered {
		s.mu.Unlock()
		return
	}
	rec.delivered = true
	deliveries := s.order.ready(id, payload)
	s.mu.Unlock()

	for _, dv := range deliveries {
		s.cfg.Deliver(dv.origin, dv.slot, dv.payload)
	}
}

func (s *Signed) membership(id types.ReplicaID) bool {
	for _, p := range s.cfg.Peers {
		if p == id {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer for diagnostics.
func (s *Signed) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("signedbrb{self=%d peers=%d f=%d out=%d}", s.cfg.Self, len(s.cfg.Peers), s.cfg.F, s.nextOut)
}
