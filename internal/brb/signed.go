package brb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/sched"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// Signed implements BRB with digital signatures (after Malkhi & Reiter),
// the broadcast layer of Astro II (paper §IV-A, Listing 6).
//
// Per instance: the origin PREPAREs the payload to all replicas; each
// replica signs an ACK for the first payload it sees for the instance
// (subject to the validator) and unicasts it back to the origin; on
// gathering a Byzantine quorum (2f+1) of valid ACKs the origin sends a
// COMMIT carrying the payload and the aggregated certificate; replicas
// verify the certificate and deliver, in per-origin slot order.
//
// Message complexity is O(N) — the all-to-all phases of Bracha are
// replaced by unicasts to and from the origin — at the price of signature
// computation. The protocol does not provide totality: if the origin is
// faulty, some correct replicas may deliver while others never do. Astro II
// compensates at the payment layer with CREDIT dependency certificates.
//
// Signature computation — the dominant CPU cost of the protocol, which
// the paper amortizes with 256-payment batches (§VI-A) — never runs on a
// transport dispatch goroutine, in either direction:
//
//   - ack *signing* is queued and drained by a single logical signer on
//     the verifier pool. While one ECDSA is in flight, further prepares
//     accumulate; the drain then signs them all with ONE signature over a
//     hash chain of the pending instances (see ackchain.go), so signing
//     cost per instance shrinks with load — the sign-side analogue of the
//     paper's batch amortization. A lone pending ack keeps the single-slot
//     wire form;
//   - ack signatures arriving at the origin are checked asynchronously and
//     re-enter the state machine through a completion callback; a chain
//     signature is checked once for all the instances it endorses;
//   - commit certificates verify continuation-style (PR 9): the cheap
//     prepass runs on a verifier task, the signature checks fan out with
//     early exit, and the completion callback re-enters the FIFO delivery
//     drain on whichever lane settles the tally — no goroutine is spawned
//     per commit. Handing the commit to the verifier blocks the dispatch
//     goroutine only when the pool queue is full, which is the same
//     backpressure the old bounded coordinators provided. In the
//     fast-verify regime (sim HMACs) the whole verification runs
//     synchronously inline, skipping the continuation overhead. The PR 1–8
//     goroutine-per-commit coordinators remain selectable as the measured
//     baseline (Config.CommitSpawn). Chain signatures inside certificates
//     hit the verifier memo, so a chain of k slots costs one ECDSA across
//     all k commits carrying it.
//
// Because verifications may complete out of order, deliveries are staged
// through the per-origin FIFO under the instance lock and then drained by
// a single logical deliverer, so the Deliver callback still observes the
// paper's per-origin slot order.
type Signed struct {
	cfg Config
	ver *verifier.Verifier

	mu      sync.Mutex
	nextOut uint64
	mine    map[uint64]*outInstance   // my in-flight broadcasts, by slot
	acked   map[instanceID]*ackRecord // instances I have acknowledged
	order   *fifo
	// committing marks instances with a certificate verification in
	// flight, so re-delivered commits don't spawn duplicate work.
	committing map[instanceID]struct{}
	// deliverQ and delivering serialize the Deliver callback: whichever
	// completion appends first drains the queue, so deliveries exit in
	// exactly the order the FIFO released them even when certificate
	// verifications finish out of order.
	deliverQ   []delivery
	delivering bool

	// ackSigner queues acks awaiting signature and drains them on the
	// pool, collapsing acks that accumulate while an ECDSA is in flight
	// into one chain signature (adaptive: chains engage only when the
	// measured sign cost exceeds the threshold — a chain trades one
	// signature for per-signer chain bytes in every commit certificate,
	// which only pays off for real ECDSA, not the simulation harness's
	// ~1µs HMACs). The scheduling lives in verifier.ChainSigner; this
	// layer supplies the wire forms.
	ackSigner *verifier.ChainSigner[ChainEntry]

	// Chain-by-digest reference state (see chainref.go): chainsKnown is
	// the receiver side — per sending peer, the chains that peer has
	// defined, bounded so no peer can evict another's entries; chainsSent
	// is the sender side — per destination, the chain digests already
	// transmitted.
	chainMu     sync.Mutex
	chainsKnown *types.PeerCache[[]ChainEntry]
	chainsSent  *types.PeerCache[struct{}]
	// refsWaiting parks COMMITREFs whose chain definition is in flight
	// (lazy-CHAINDEF mode): keyed by missing digest, drained by learnChain,
	// bounded by maxWaitingRefs. Guarded by chainMu.
	refsWaiting      map[types.Digest][]pendingRef
	refsWaitingCount int
	refStats         types.RefCounters
}

var _ Broadcaster = (*Signed)(nil)

type outInstance struct {
	payload   []byte
	digest    types.Digest
	cert      AckCert
	committed bool
}

type ackRecord struct {
	digest    types.Digest
	delivered bool
}

// Errors specific to the signed protocol.
var ErrNoKeys = errors.New("brb: signed protocol requires Keys and Registry")

// NewSigned creates the protocol instance and registers it on the mux's
// BRB channel.
func NewSigned(cfg Config) (*Signed, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Keys == nil || cfg.Registry == nil {
		return nil, ErrNoKeys
	}
	ver := cfg.Verifier
	if ver == nil {
		ver = verifier.Default()
	}
	s := &Signed{
		cfg:         cfg,
		ver:         ver,
		nextOut:     cfg.FirstSlot,
		mine:        make(map[uint64]*outInstance),
		acked:       make(map[instanceID]*ackRecord),
		order:       newFIFO(),
		committing:  make(map[instanceID]struct{}),
		chainsKnown: types.NewPeerCache[[]ChainEntry](chainCacheEntries),
		chainsSent:  types.NewPeerCache[struct{}](chainCacheEntries),
		refsWaiting: make(map[types.Digest][]pendingRef),
	}
	s.ackSigner = verifier.NewChainSigner(ver, maxSignBatch, verifier.DefaultChainThreshold, s.signSingleAck, s.signAckChain)
	// Seed the sign-cost estimate with one probe signature, so the first
	// loaded drain already knows whether chain batching pays off here.
	probeStart := time.Now()
	if _, err := cfg.Keys.Sign(SignedDigest(cfg.Self, 0, nil)); err == nil {
		s.ackSigner.SeedCost(time.Since(probeStart))
	}
	cfg.Mux.Register(transport.ChanBRB, s.onMessage)
	return s, nil
}

// Broadcast implements Broadcaster.
func (s *Signed) Broadcast(payload []byte) (uint64, error) {
	s.mu.Lock()
	s.nextOut++
	slot := s.nextOut
	buf := make([]byte, len(payload))
	copy(buf, payload)
	s.mine[slot] = &outInstance{
		payload: buf,
		digest:  SignedDigest(s.cfg.Self, slot, payload),
	}
	s.mu.Unlock()

	w := wire.AcquireWriter(payloadMsgSize(payload))
	appendPayloadMsg(w, kindPrepare, s.cfg.Self, slot, payload)
	for _, p := range s.cfg.Peers {
		_ = s.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanBRB, w.Bytes())
	}
	w.Release()
	return slot, nil
}

// Rebroadcast re-runs the PREPARE phase for a slot this replica reserved
// before a crash, with the exact payload recorded in its WAL. The slot
// must be at most Config.FirstSlot (a reservation from the previous
// incarnation); peers that already acknowledged the identical digest
// re-ack it, so the protocol completes even though the first PREPARE wave
// reached some of them.
func (s *Signed) Rebroadcast(slot uint64, payload []byte) {
	s.mu.Lock()
	if slot > s.nextOut || s.mine[slot] != nil {
		s.mu.Unlock()
		return
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	s.mine[slot] = &outInstance{
		payload: buf,
		digest:  SignedDigest(s.cfg.Self, slot, payload),
	}
	s.mu.Unlock()

	w := wire.AcquireWriter(payloadMsgSize(payload))
	appendPayloadMsg(w, kindPrepare, s.cfg.Self, slot, payload)
	for _, p := range s.cfg.Peers {
		_ = s.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanBRB, w.Bytes())
	}
	w.Release()
}

// Delivered implements Broadcaster.
func (s *Signed) Delivered(origin types.ReplicaID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.delivered[origin]
}

func (s *Signed) onMessage(from transport.NodeID, payload []byte) {
	peer := types.ReplicaID(from)
	r := wire.NewReader(payload)
	kind := r.U8()
	if r.Err() != nil {
		return
	}
	if kind == kindAckBatch {
		// Chain-signed acks carry no instance header: the chain itself
		// names every instance the signature endorses.
		chain, err := decodeChain(r)
		if err != nil {
			return
		}
		sig := r.Chunk()
		if r.Err() != nil || len(chain) == 0 {
			return
		}
		s.handleAckBatch(peer, chain, sig)
		return
	}
	if kind == kindChainDef {
		// A chain definition carries no instance header either: it is
		// content-addressed, keyed by the digest the receiver recomputes.
		// Only group members may define chains: the per-peer caches are
		// bounded individually, and membership bounds how many exist.
		if !s.membership(peer) {
			return
		}
		chain, err := decodeChainDef(r)
		if err != nil {
			return
		}
		s.learnChain(peer, AckChainDigest(chain), chain)
		return
	}
	origin := types.ReplicaID(r.U32())
	slot := r.U64()
	if r.Err() != nil {
		return
	}
	id := instanceID{origin: origin, slot: slot}
	switch kind {
	case kindPrepare:
		if peer != origin {
			return // spoofed prepare
		}
		body := r.Chunk()
		if r.Err() != nil {
			return
		}
		s.handlePrepare(id, body)
	case kindAck:
		digest := r.Bytes32()
		sig := r.Chunk()
		if r.Err() != nil {
			return
		}
		s.handleAck(id, peer, digest, sig)
	case kindCommit:
		body := r.Chunk()
		cert, err := crypto.DecodeCertificate(r)
		if err != nil || r.Err() != nil {
			return
		}
		s.handleCommit(id, body, cert)
	case kindCommitBatch:
		body := r.Chunk()
		cert, err := decodeAckCert(r)
		if err != nil || r.Err() != nil {
			return
		}
		// Hash each inline chain once: the digest feeds both the chain
		// cache (a later COMMITREF from this peer may reference it — the
		// NACK fallback re-primes the cache this way, since the legacy
		// resend carries every chain in full; only group members get a
		// cache) and the certificate's memoized ChainDigest, so
		// verifyAckCert does not rehash. Learning runs on the dispatch
		// goroutine, but only on this legacy/fallback path.
		member := s.membership(peer)
		for i := range cert.Sigs {
			if cert.Sigs[i].Chain == nil {
				continue
			}
			cert.Sigs[i].ChainDigest = AckChainDigest(cert.Sigs[i].Chain)
			if member {
				s.learnChain(peer, cert.Sigs[i].ChainDigest, cert.Sigs[i].Chain)
			}
		}
		s.handleCommitBatch(id, body, cert)
	case kindCommitTab:
		body := r.Chunk()
		if r.Err() != nil {
			return
		}
		cert, table, digests, err := decodeCommitTab(r)
		if err != nil {
			return
		}
		// The table is hashed once by the decoder; feed it to the chain
		// cache (membership-gated, like CHAINDEF) so later COMMITREFs
		// referencing these chains resolve, and so any references parked
		// waiting on one of them drain now — the tabled form doubles as
		// the lazy mode's self-contained fallback resend.
		if s.membership(peer) {
			for i := range table {
				s.learnChain(peer, digests[i], table[i])
			}
		}
		s.handleCommitBatch(id, body, cert)
	case kindCommitRef:
		body := r.Chunk()
		if r.Err() != nil {
			return
		}
		sigs, err := decodeCommitRef(r)
		if err != nil {
			return
		}
		s.handleCommitRef(id, peer, body, sigs)
	case kindChainNack:
		missing, err := decodeChainNack(r)
		if err != nil {
			return
		}
		s.handleChainNack(id, peer, missing)
	}
}

// handlePrepare acknowledges the first (and only the first) payload seen
// for the instance — the equivocation check of Listing 6. The ack is not
// signed here: it is queued for the pool-side signer, so the dispatch
// goroutine never executes an ECDSA.
func (s *Signed) handlePrepare(id instanceID, payload []byte) {
	d := SignedDigest(id.origin, id.slot, payload)

	s.mu.Lock()
	if rec, seen := s.acked[id]; seen {
		resend := rec.digest == d
		s.mu.Unlock()
		if resend {
			// Identical re-prepare: the origin is recovering from a crash
			// and re-running the PREPARE phase (Rebroadcast). Our previous
			// ack — possibly lost with the origin's memory — endorsed this
			// exact digest, so re-signing it grants nothing new; without
			// the re-ack a rebroadcast slot could never gather its quorum.
			// The validator is skipped: it ran (and passed) the first time,
			// and re-running it against replayed endorsement state would
			// wrongly flag the batch's payments as double-spends.
			s.ackSigner.Enqueue(ChainEntry{Origin: id.origin, Slot: id.slot, Digest: d})
		}
		return // conflicting payload for an acked instance: stay silent
	}
	s.mu.Unlock()

	// The validator runs outside the instance lock: the payment layer's
	// hook verifies a whole batch of client signatures on the pool and
	// blocks for the results, and completion callbacks taking s.mu must
	// stay able to run meanwhile.
	if s.cfg.Validator != nil && !s.cfg.Validator(id.origin, id.slot, payload) {
		return
	}

	s.mu.Lock()
	if _, seen := s.acked[id]; seen {
		// A commit for this instance finished verifying while the
		// validator ran; its record wins and this replica stays silent.
		s.mu.Unlock()
		return
	}
	s.acked[id] = &ackRecord{digest: d}
	s.mu.Unlock()

	// Blocking submission: under a saturated pool this stalls the BRB
	// channel (backpressure), but the signature itself still runs on a
	// worker — never on this goroutine.
	s.ackSigner.Enqueue(ChainEntry{Origin: id.origin, Slot: id.slot, Digest: d})
}

// signSingleAck signs one pending ack in the single-slot wire form
// (ChainSigner flush callback, pool side).
func (s *Signed) signSingleAck(e ChainEntry) {
	sig, err := s.ackSigner.Sign(1, func() ([]byte, error) { return s.cfg.Keys.Sign(e.Digest) })
	if err != nil {
		return // entropy failure; withholding an ack is always safe
	}
	w := wire.AcquireWriter(ackSize(sig))
	appendAck(w, e.Origin, e.Slot, e.Digest, sig)
	_ = s.cfg.Mux.Send(transport.ReplicaNode(e.Origin), transport.ChanBRB, w.Bytes())
	w.Release()
}

// signAckChain signs a batch of pending acks with one chain signature,
// unicast to every origin the chain touches (ChainSigner flush callback).
// The ACKBATCH — chain included — is encoded once into the wave's shared
// scratch and the same bytes go to every destination.
func (s *Signed) signAckChain(batch []ChainEntry, wave *verifier.Wave) {
	cd := AckChainDigest(batch)
	sig, err := s.ackSigner.Sign(len(batch), func() ([]byte, error) { return s.cfg.Keys.Sign(cd) })
	if err != nil {
		return
	}
	// Self-prime: cache our own chain before any origin's commit can
	// reference it. In lazy-CHAINDEF mode this is what makes most
	// definitions unnecessary — every receiver already holds the chains it
	// signed, so references to them never NACK. The ChainSigner's drain
	// hands the flush callback ownership of the batch slice, so caching it
	// without a copy is safe.
	s.learnChain(s.cfg.Self, cd, batch)
	w := wave.Scratch(ackBatchSize(batch, sig))
	appendAckBatch(w, batch, sig)
	sent := make(map[types.ReplicaID]struct{}, 4)
	for _, e := range batch {
		if _, dup := sent[e.Origin]; dup {
			continue
		}
		sent[e.Origin] = struct{}{}
		_ = s.cfg.Mux.Send(transport.ReplicaNode(e.Origin), transport.ChanBRB, w.Bytes())
	}
}

// handleAck runs at the origin: it performs the cheap instance checks
// inline, then hands the signature to the verifier pool. Certificate
// assembly — and the COMMIT, once a quorum accrues — happens in the
// completion callback.
func (s *Signed) handleAck(id instanceID, peer types.ReplicaID, digest types.Digest, sig []byte) {
	if id.origin != s.cfg.Self {
		return // ack for someone else's instance; misdirected
	}

	s.mu.Lock()
	out := s.mine[id.slot]
	if out == nil || out.committed || digest != out.digest {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Signature checks dominate CPU cost: run them on the pool, off the
	// dispatch goroutine and outside the instance lock. Re-sent acks hit
	// the verifier's memo and resolve inline.
	s.ver.VerifyReplicaDetached(s.cfg.Registry, peer, digest, sig, func(ok bool) {
		if ok {
			s.ackVerified(id, peer, digest, sig, nil, types.Digest{})
		}
	})
}

// handleAckBatch runs at each origin a chain touches: find the entries
// addressed to my in-flight instances, then verify the one chain
// signature on the pool and credit every covered instance from the
// completion callback. The chain digest is memoized, so the ECDSA runs
// once however many instances (or redeliveries) the chain covers.
func (s *Signed) handleAckBatch(peer types.ReplicaID, chain []ChainEntry, sig []byte) {
	// Cache the acker's chain like an unsolicited CHAINDEF (same
	// membership gate, same content-addressed soundness — the digest is
	// recomputed from the bytes in hand). In lazy-CHAINDEF mode this is
	// the second half of the no-NACK steady state: when every replica
	// originates traffic, every chain touches every origin, so each
	// replica learns each acker's chain here before any COMMITREF can
	// reference it.
	cd := AckChainDigest(chain)
	if s.membership(peer) {
		s.learnChain(peer, cd, chain)
	}
	var relevant []ChainEntry
	s.mu.Lock()
	for _, e := range chain {
		if e.Origin != s.cfg.Self {
			continue
		}
		out := s.mine[e.Slot]
		if out == nil || out.committed || e.Digest != out.digest || out.cert.has(peer) {
			continue
		}
		relevant = append(relevant, e)
	}
	s.mu.Unlock()
	if len(relevant) == 0 {
		return
	}
	s.ver.VerifyReplicaDetached(s.cfg.Registry, peer, cd, sig, func(ok bool) {
		if !ok {
			return
		}
		for _, e := range relevant {
			s.ackVerified(instanceID{origin: e.Origin, slot: e.Slot}, peer, e.Digest, sig, chain, cd)
		}
	})
}

// ackVerified re-enters the state machine after an ack signature checks
// out: record it (with its chain context, if batch-signed), and commit on
// reaching the quorum.
func (s *Signed) ackVerified(id instanceID, peer types.ReplicaID, digest types.Digest, sig []byte, chain []ChainEntry, chainDigest types.Digest) {
	s.mu.Lock()
	out := s.mine[id.slot]
	if out == nil || out.committed || digest != out.digest || out.cert.has(peer) {
		s.mu.Unlock()
		return
	}
	out.cert.Sigs = append(out.cert.Sigs, AckSig{Replica: peer, Sig: sig, Chain: chain, ChainDigest: chainDigest})
	commit := out.cert.Len() >= s.cfg.quorum()
	if commit {
		out.committed = true
	}
	payload := out.payload
	cert := out.cert
	s.mu.Unlock()

	if commit {
		s.sendCommit(id, payload, digest, cert)
	}
}

// defChain is one distinct chain named by a commit certificate, with its
// CHAINDEF encoding built lazily and shared across destinations.
type defChain struct {
	digest types.Digest
	chain  []ChainEntry
	enc    []byte
}

// buildRefSigs converts a certificate to the reference form and collects
// the distinct chains it names. Every chain signature records this
// instance's index in its chain, so receivers locate the entry in O(1)
// (the digest binding is still confirmed against the payload hash during
// verification). ok is false when a chain does not carry this instance's
// entry — the defensive case the reference form cannot express, which
// handleAckBatch's filtering should make unreachable.
func (s *Signed) buildRefSigs(id instanceID, digest types.Digest, cert AckCert) (sigs []refSig, defs []defChain, ok bool) {
	sigs = make([]refSig, 0, len(cert.Sigs))
	for _, a := range cert.Sigs {
		if a.Chain == nil {
			sigs = append(sigs, refSig{Replica: a.Replica, Sig: a.Sig})
			continue
		}
		idx := -1
		for i, e := range a.Chain {
			if e.Origin == id.origin && e.Slot == id.slot && e.Digest == digest {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, nil, false
		}
		sigs = append(sigs, refSig{Replica: a.Replica, Sig: a.Sig, HasRef: true, Ref: a.ChainDigest, Idx: uint32(idx)})
		known := false
		for _, d := range defs {
			if d.digest == a.ChainDigest {
				known = true
				break
			}
		}
		if !known {
			defs = append(defs, defChain{digest: a.ChainDigest, chain: a.Chain})
		}
	}
	return sigs, defs, true
}

// sendCommit broadcasts the commit for an instance whose quorum is
// complete. A certificate of only single-slot signatures takes the
// original crypto.Certificate wire form (kindCommit) — the
// backward-compatible fallback. Chain signatures take the chain-reference
// form: the COMMITREF is encoded once (it is destination-independent);
// chain definitions are withheld by default (lazy CHAINDEF — receivers
// already know their own chains and any chain learned from any peer, and
// demand the rest by NACK), or, in the eager baseline
// (Config.EagerChainDefs), each destination that has not yet seen a
// referenced chain receives its CHAINDEF ahead of the reference on the
// same FIFO channel.
func (s *Signed) sendCommit(id instanceID, payload []byte, digest types.Digest, cert AckCert) {
	if cert.allPlain() {
		// Single-slot certificates stay on the legacy wire form; they
		// count under FullSends (self-contained sends) in the stats.
		s.sendCommitFull(id, payload, cert, s.cfg.Peers...)
		return
	}
	sigs, defs, ok := s.buildRefSigs(id, digest, cert)
	if !ok {
		// A chain that does not endorse this instance never enters the
		// certificate (handleAckBatch filters); if one did, referencing it
		// would be unverifiable — fall back to the self-contained form.
		s.sendCommitFull(id, payload, cert, s.cfg.Peers...)
		return
	}

	ref := wire.AcquireWriter(commitRefSize(payload, sigs))
	appendCommitRef(ref, id.origin, id.slot, payload, sigs)
	for _, p := range s.cfg.Peers {
		dest := transport.ReplicaNode(p)
		for i := range defs {
			// chainSentTo touches the entry, keeping the sender's sent-set
			// aging in lockstep with the receiver's cache; the mark lands
			// only after the Send returns, so any goroutine that observes
			// it orders its reference behind this definition on the FIFO
			// channel. After the wave's first commit every destination has
			// the chain and the loop costs one cache probe per chain.
			if s.chainSentTo(p, defs[i].digest) {
				continue
			}
			if !s.cfg.EagerChainDefs {
				// Lazy mode: withhold the definition and record the
				// deferral once per (chain, destination) — exactly what
				// the eager baseline would have sent. A receiver that
				// actually needs the chain demands it (handleChainNack
				// answers with the definition); most never do.
				s.markChainSent(p, defs[i].digest)
				s.refStats.DefsDeferred.Add(1)
				continue
			}
			if defs[i].enc == nil {
				defs[i].enc = EncodeChainDef(defs[i].chain)
			}
			_ = s.cfg.Mux.Send(dest, transport.ChanBRB, defs[i].enc)
			s.refStats.DefsSent.Add(1)
			s.markChainSent(p, defs[i].digest)
		}
		_ = s.cfg.Mux.Send(dest, transport.ChanBRB, ref.Bytes())
		s.refStats.RefsSent.Add(1)
	}
	ref.Release()
}

// sendCommitFull sends the self-contained legacy encoding of a commit to
// the given destinations — the NACK fallback, and the defensive path for
// certificates the reference form cannot express.
func (s *Signed) sendCommitFull(id instanceID, payload []byte, cert AckCert, dests ...types.ReplicaID) {
	var w *wire.Writer
	if cert.allPlain() {
		var legacy crypto.Certificate
		for _, a := range cert.Sigs {
			legacy.Add(crypto.PartialSig{Replica: a.Replica, Sig: a.Sig})
		}
		w = wire.AcquireWriter(commitSize(payload, legacy))
		appendCommit(w, id.origin, id.slot, payload, legacy)
	} else {
		// Chain-carrying certificates take the tabled form: each distinct
		// chain crosses the wire once per message, however many signatures
		// name it. The legacy inline COMMITBATCH stays decodable.
		table, _, idxs := commitChainTable(cert)
		w = wire.AcquireWriter(commitTabSize(payload, table, cert))
		appendCommitTab(w, id.origin, id.slot, payload, table, cert, idxs)
	}
	for _, p := range dests {
		_ = s.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanBRB, w.Bytes())
		s.refStats.FullSends.Add(1)
	}
	w.Release()
}

// beginCommit performs the cheap duplicate checks for an incoming commit
// and marks the instance's verification in flight. It reports whether the
// caller should proceed.
func (s *Signed) beginCommit(id instanceID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec := s.acked[id]; rec != nil && rec.delivered {
		return false
	}
	if _, busy := s.committing[id]; busy {
		return false // a verification for this instance is already in flight
	}
	s.committing[id] = struct{}{}
	return true
}

// handleCommit performs the cheap duplicate checks inline, then verifies
// the certificate continuation-style: the digest hash and prepass run on
// a verifier task (handed off with Async, whose blocking-when-full is the
// backpressure that bounds in-flight commits), the signature checks fan
// out with 2f+1 early exit, and the completion callback re-enters the
// FIFO delivery drain — zero goroutines per commit. The fast-verify
// regime (cheap sim HMACs) skips the hand-off and runs the whole thing
// synchronously here; Config.CommitSpawn restores the goroutine-per-
// commit baseline.
func (s *Signed) handleCommit(id instanceID, payload []byte, cert crypto.Certificate) {
	if !s.beginCommit(id) {
		return
	}
	if s.cfg.CommitSpawn {
		// Baseline: a coordinator goroutine blocks on the fanned-out
		// checks. Routed through sched.Go so the spawn guard counts it.
		sched.Go(func() {
			d := SignedDigest(id.origin, id.slot, payload)
			err := s.ver.VerifyCertificate(s.cfg.Registry, cert, d, s.cfg.quorum(), s.membership)
			s.commitVerified(id, d, payload, err == nil)
		})
		return
	}
	if s.ver.FastVerify() {
		// Cheap-check regime: inline beats any hand-off. VerifyCertificate
		// itself finishes serially on this goroutine when checks are cheap
		// (single worker or a near-resolved prepass); for wider fan-outs
		// the Detached form below is still the safe default, so gate on
		// the measured cost alone.
		d := SignedDigest(id.origin, id.slot, payload)
		err := s.ver.VerifyCertificateInline(s.cfg.Registry, cert, d, s.cfg.quorum(), s.membership)
		s.commitVerified(id, d, payload, err == nil)
		return
	}
	s.ver.TryAsync(func() {
		// On a verifier lane (or inline under a saturated pool — the
		// natural backpressure; TryAsync rather than Async because commits
		// can arrive via the parked-reference drain, which runs on a pool
		// worker, and a blocking enqueue there could wedge a full queue
		// against itself): hash the payload and start the tally. The
		// continuation may fire inline right here (memo hits, structural
		// failure) or on whichever lane casts the deciding vote; either
		// way commitVerified only takes s.mu and drains deliveries — it
		// never waits on the verifier, per the continuation discipline.
		d := SignedDigest(id.origin, id.slot, payload)
		s.ver.VerifyCertificateDetached(s.cfg.Registry, cert, d, s.cfg.quorum(), s.membership, func(ok bool) {
			s.commitVerified(id, d, payload, ok)
		})
	})
}

// handleCommitBatch is handleCommit for extended certificates: chain
// signatures verify against their chain digest (once, memoized, for all
// the commits a chain covers) and count toward the quorum only if the
// chain actually carries this instance's entry.
func (s *Signed) handleCommitBatch(id instanceID, payload []byte, cert AckCert) {
	if !s.beginCommit(id) {
		return
	}
	if s.cfg.CommitSpawn {
		sched.Go(func() {
			d := SignedDigest(id.origin, id.slot, payload)
			ok := s.verifyAckCert(id, d, cert)
			s.commitVerified(id, d, payload, ok)
		})
		return
	}
	if s.ver.FastVerify() {
		d := SignedDigest(id.origin, id.slot, payload)
		ok := s.verifyAckCertSync(id, d, cert)
		s.commitVerified(id, d, payload, ok)
		return
	}
	s.ver.TryAsync(func() {
		d := SignedDigest(id.origin, id.slot, payload)
		s.verifyAckCertDetached(id, d, cert, func(ok bool) {
			s.commitVerified(id, d, payload, ok)
		})
	})
}

// handleCommitRef resolves a chain-referencing commit against the per-peer
// chain cache and, when enough references resolve for a quorum, proceeds
// exactly like a COMMITBATCH. When resolution leaves the quorum out of
// reach — an evicted or never-seen chain — it NACKs the missing digests
// back to the sender, which degrades to the self-contained legacy form for
// this slot; the reference protocol can delay a delivery by one round
// trip, never prevent it.
func (s *Signed) handleCommitRef(id instanceID, peer types.ReplicaID, payload []byte, sigs []refSig) {
	cert := AckCert{Sigs: make([]AckSig, 0, len(sigs))}
	var missing []types.Digest
	var missingSet map[types.Digest]struct{}
	for _, rs := range sigs {
		if !rs.HasRef {
			cert.Sigs = append(cert.Sigs, AckSig{Replica: rs.Replica, Sig: rs.Sig})
			continue
		}
		chain, ok := s.knownChain(peer, rs.Ref)
		if !ok {
			s.refStats.RefMisses.Add(1)
			// One quorum usually references one chain; name each digest
			// once, and stop collecting at the NACK bound up front — the
			// answer to ANY named digest re-supplies the commit, so a
			// hostile reference list buys neither an overlong NACK nor a
			// quadratic dedup scan.
			if missingSet == nil {
				missingSet = make(map[types.Digest]struct{}, 4)
			}
			if _, dup := missingSet[rs.Ref]; !dup && len(missing) < maxNackDigests {
				missingSet[rs.Ref] = struct{}{}
				missing = append(missing, rs.Ref)
			}
			continue
		}
		s.refStats.RefHits.Add(1)
		// The carried index locates this instance's entry in O(1): a
		// reference whose indexed entry names another instance cannot
		// endorse this one, and is dropped before any verification work.
		// The entry's digest is bound later, by verifyAckCert, against
		// the payload hash computed off this dispatch goroutine.
		if int(rs.Idx) >= len(chain) {
			continue // reference cannot be valid; treat as no endorsement
		}
		if e := chain[rs.Idx]; e.Origin != id.origin || e.Slot != id.slot {
			continue // indexed entry is for another instance
		}
		cert.Sigs = append(cert.Sigs, AckSig{Replica: rs.Replica, Sig: rs.Sig, Chain: chain, ChainDigest: rs.Ref})
	}
	if len(missing) > 0 && len(cert.Sigs) < s.cfg.quorum() {
		// Not deliverable from what we have. Skip the NACK when the
		// instance is already delivered or mid-verification — a duplicate
		// needs no resend.
		s.mu.Lock()
		rec := s.acked[id]
		_, busy := s.committing[id]
		done := busy || (rec != nil && rec.delivered)
		s.mu.Unlock()
		if done {
			return
		}
		if !s.cfg.EagerChainDefs {
			// Lazy mode: park the reference on its LAST missing digest —
			// a NACK is answered with definitions in certificate order, so
			// by the time the last one lands and learnChain re-runs the
			// parked reference, the earlier ones are already cached and the
			// re-run resolves outright instead of re-parking per digest.
			// Only the digest's first waiter NACKs; followers ride the same
			// answer. A parked reference evicted by the bound falls back to
			// the NACK round trip, so delivery never depends on buffer
			// capacity.
			parked, nack := s.parkRef(missing[len(missing)-1], pendingRef{id: id, peer: peer, payload: payload, sigs: sigs})
			if parked && !nack {
				return
			}
		}
		w := wire.AcquireWriter(chainNackSize(missing))
		appendChainNack(w, id.origin, id.slot, missing)
		_ = s.cfg.Mux.Send(transport.ReplicaNode(peer), transport.ChanBRB, w.Bytes())
		w.Release()
		s.refStats.NacksSent.Add(1)
		return
	}
	s.handleCommitBatch(id, payload, cert)
}

// handleChainNack runs at the origin: a destination could not resolve
// chain references for one of our commits. In lazy-CHAINDEF mode this is
// the demand path: answer with exactly the CHAINDEFs the receiver named,
// followed by the COMMITREF again, on the same FIFO channel. When a named
// digest is not one of this commit's chains (a stale NACK about an
// earlier wave, or eager mode) degrade to the self-contained resend after
// forgetting the digests were sent, so the next wave re-defines them.
func (s *Signed) handleChainNack(id instanceID, peer types.ReplicaID, missing []types.Digest) {
	if id.origin != s.cfg.Self {
		return // we only resend our own commits
	}
	// Only group members receive commits, so only they can legitimately
	// miss a chain; gating here keeps the resend amplification (a 37-byte
	// NACK answered with definitions or a complete commit) and the
	// sent-set churn reachable by group members alone.
	if !s.membership(peer) {
		return
	}
	s.refStats.NacksReceived.Add(1)
	s.mu.Lock()
	out := s.mine[id.slot]
	if out == nil || !out.committed {
		s.mu.Unlock()
		s.forgetChainsSent(peer, missing)
		return
	}
	payload, digest, cert := out.payload, out.digest, out.cert
	s.mu.Unlock()
	if !s.cfg.EagerChainDefs && s.answerNackWithDefs(id, peer, payload, digest, cert, missing) {
		return
	}
	s.forgetChainsSent(peer, missing)
	s.sendCommitFull(id, payload, cert, peer)
}

// answerNackWithDefs serves a lazy-mode demand: when every digest the
// receiver named is one of this commit's certificate chains, send those
// CHAINDEFs and then the COMMITREF again — FIFO ordering guarantees the
// definitions land first, and learnChain on the receiver re-runs any
// references parked meanwhile. Reports false when a named digest is not
// servable from this certificate (the caller falls back to the
// self-contained form, which answers everything).
func (s *Signed) answerNackWithDefs(id instanceID, peer types.ReplicaID, payload []byte, digest types.Digest, cert AckCert, missing []types.Digest) bool {
	sigs, defs, ok := s.buildRefSigs(id, digest, cert)
	if !ok {
		return false
	}
	for _, m := range missing {
		found := false
		for i := range defs {
			if defs[i].digest == m {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	dest := transport.ReplicaNode(peer)
	for i := range defs {
		demanded := false
		for _, m := range missing {
			if defs[i].digest == m {
				demanded = true
				break
			}
		}
		if !demanded {
			continue // the receiver has this one; it named what it lacks
		}
		if defs[i].enc == nil {
			defs[i].enc = EncodeChainDef(defs[i].chain)
		}
		_ = s.cfg.Mux.Send(dest, transport.ChanBRB, defs[i].enc)
		s.refStats.DefsSent.Add(1)
		s.refStats.DefsDemanded.Add(1)
		s.markChainSent(peer, defs[i].digest)
	}
	ref := wire.AcquireWriter(commitRefSize(payload, sigs))
	appendCommitRef(ref, id.origin, id.slot, payload, sigs)
	_ = s.cfg.Mux.Send(dest, transport.ChanBRB, ref.Bytes())
	ref.Release()
	s.refStats.RefsSent.Add(1)
	return true
}

// verifyAckCert checks that an extended certificate carries a quorum of
// valid endorsements of (id, d). Like verifier.VerifyCertificate it
// accepts as soon as quorum valid signatures are confirmed (extra invalid
// or irrelevant ones are ignored — a quorum of valid endorsements is
// exactly what the protocol needs); duplicate signers count once.
func (s *Signed) verifyAckCert(id instanceID, d types.Digest, cert AckCert) bool {
	need := s.cfg.quorum()
	items := s.ackCertItems(id, d, cert)
	if len(items) < need {
		return false
	}
	futures := make([]*verifier.Future, 0, len(items))
	for _, it := range items {
		futures = append(futures, s.ver.VerifyReplicaAsync(s.cfg.Registry, it.replica, it.digest, it.sig, nil))
	}
	valid := 0
	for i, f := range futures {
		if f.Wait() {
			valid++
			if valid >= need {
				return true
			}
		}
		if valid+len(futures)-1-i < need {
			return false // quorum out of reach; skip the stragglers
		}
	}
	return false
}

// ackCertItems performs verifyAckCert's cheap serial filtering — dedupe,
// membership, chain endorsement, chain-digest memoization — returning the
// (replica, digest, sig) triples left to verify. Shared by the blocking,
// synchronous, and continuation variants.
type ackCertItem struct {
	replica types.ReplicaID
	digest  types.Digest
	sig     []byte
}

func (s *Signed) ackCertItems(id instanceID, d types.Digest, cert AckCert) []ackCertItem {
	seen := make(map[types.ReplicaID]struct{}, len(cert.Sigs))
	items := make([]ackCertItem, 0, len(cert.Sigs))
	for _, a := range cert.Sigs {
		if _, dup := seen[a.Replica]; dup {
			continue
		}
		if !s.membership(a.Replica) {
			continue
		}
		dg := d
		if a.Chain != nil {
			if !chainContains(a.Chain, id, d) {
				continue // chain does not endorse this instance
			}
			dg = a.ChainDigest
			if dg == (types.Digest{}) {
				dg = AckChainDigest(a.Chain)
			}
		}
		seen[a.Replica] = struct{}{}
		items = append(items, ackCertItem{replica: a.Replica, digest: dg, sig: a.Sig})
	}
	return items
}

// verifyAckCertSync is verifyAckCert fully on the calling goroutine —
// serial, memoized, early-exiting — the fast-verify-regime path where
// cheap checks make any hand-off pure overhead.
func (s *Signed) verifyAckCertSync(id instanceID, d types.Digest, cert AckCert) bool {
	need := s.cfg.quorum()
	items := s.ackCertItems(id, d, cert)
	if len(items) < need {
		return false
	}
	valid := 0
	for i, it := range items {
		if s.ver.VerifyReplica(s.cfg.Registry, it.replica, it.digest, it.sig) {
			valid++
			if valid >= need {
				return true
			}
		}
		if valid+len(items)-1-i < need {
			return false
		}
	}
	return false
}

// verifyAckCertDetached is the continuation form: cb fires exactly once
// with the quorum verdict, inline when memo hits settle it during the
// fan-out loop, otherwise on the goroutine casting the deciding vote.
// Exactly-once follows from the CertTally arithmetic: every item votes,
// and fewer than `need` valid votes forces more invalid ones than the
// budget tolerates.
func (s *Signed) verifyAckCertDetached(id instanceID, d types.Digest, cert AckCert, cb func(bool)) {
	need := s.cfg.quorum()
	items := s.ackCertItems(id, d, cert)
	if len(items) < need {
		cb(false)
		return
	}
	t := verifier.NewCertTally(need, len(items)-need, cb)
	for _, it := range items {
		if t.Done() {
			return // settled by memo hits mid-loop; remaining checks moot
		}
		s.ver.VerifyReplicaDetached(s.cfg.Registry, it.replica, it.digest, it.sig, t.Vote)
	}
}

// commitVerified re-enters the state machine after certificate
// verification: on success it marks the instance delivered, releases the
// consecutive run from the per-origin FIFO, and drains the delivery queue.
// A failed verification only clears the in-flight marker, so a later
// well-formed commit for the instance can still be processed.
func (s *Signed) commitVerified(id instanceID, d types.Digest, payload []byte, ok bool) {
	s.mu.Lock()
	delete(s.committing, id)
	if !ok {
		s.mu.Unlock()
		return // invalid or insufficient certificate
	}
	rec := s.acked[id]
	if rec == nil {
		rec = &ackRecord{digest: d}
		s.acked[id] = rec
	}
	if rec.delivered {
		s.mu.Unlock()
		return
	}
	rec.delivered = true
	if s.cfg.Unordered {
		// Recovery mode: deliver in arrival order. Slots the replica
		// missed while down will never be retransmitted, so waiting for a
		// consecutive run would wedge the origin forever; the payment
		// layer orders by client sequence number on its own. rec.delivered
		// above already dedups; the high-water mark keeps Delivered()
		// meaningful.
		if id.slot > s.order.delivered[id.origin] {
			s.order.delivered[id.origin] = id.slot
		}
		s.deliverQ = append(s.deliverQ, delivery{origin: id.origin, slot: id.slot, payload: payload})
	} else {
		s.deliverQ = append(s.deliverQ, s.order.ready(id, payload)...)
	}
	if s.delivering {
		// Another completion is draining; it will pick these up, in order.
		s.mu.Unlock()
		return
	}
	s.delivering = true
	for len(s.deliverQ) > 0 {
		batch := s.deliverQ
		s.deliverQ = nil
		s.mu.Unlock()
		for _, dv := range batch {
			s.cfg.Deliver(dv.origin, dv.slot, dv.payload)
		}
		s.mu.Lock()
	}
	s.delivering = false
	s.mu.Unlock()
}

func (s *Signed) membership(id types.ReplicaID) bool {
	for _, p := range s.cfg.Peers {
		if p == id {
			return true
		}
	}
	return false
}

// AckSignStats returns how many signing operations this replica has spent
// on acks and how many acks they covered. acks/ops > 1 means chain
// batching engaged (one ECDSA endorsing several instances).
func (s *Signed) AckSignStats() (ops, acks uint64) {
	return s.ackSigner.Stats()
}

// ChainRefStats returns the chain-reference protocol counters: CHAINDEFs
// and COMMITREFs sent, cache hits and misses on inbound references, and
// NACK fallback traffic.
func (s *Signed) ChainRefStats() ChainRefStats {
	return s.refStats.Snapshot()
}

// String implements fmt.Stringer for diagnostics.
func (s *Signed) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("signedbrb{self=%d peers=%d f=%d out=%d}", s.cfg.Self, len(s.cfg.Peers), s.cfg.F, s.nextOut)
}
