package brb

// PR 4 evidence: wire bytes per committed payment on the BRB channel, at
// chain cap 32. The legacy COMMITBATCH re-encodes every signer's full
// digest chain in every slot's commit; the chain-reference form sends each
// chain to a destination once (CHAINDEF) and each commit carries 37 bytes
// per chain signature instead of the chain. Measured per destination —
// both forms are broadcast to the same peer set.

import (
	"fmt"
	"testing"

	"astro/internal/types"
)

// benchAckChainWave builds one aligned settlement wave: `slots` instances
// of one origin, acked by `quorum` signers whose drain batches covered the
// same instances — so their chains are content-identical (one digest, one
// CHAINDEF) — plus the per-slot certificates in both wire forms.
func benchCommitWireBytes(b *testing.B, slots, quorum, payloadLen int) {
	payloads := make([][]byte, slots)
	chain := make([]ChainEntry, slots)
	for i := range chain {
		payloads[i] = make([]byte, payloadLen)
		copy(payloads[i], fmt.Sprintf("batch-%d", i))
		chain[i] = ChainEntry{Origin: 0, Slot: uint64(i + 1), Digest: SignedDigest(0, uint64(i+1), payloads[i])}
	}
	cd := AckChainDigest(chain)
	sig := make([]byte, 71) // ECDSA-sized; byte accounting needs no validity

	b.Run("full-chain", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = 0
			var cert AckCert
			for q := 0; q < quorum; q++ {
				cert.Sigs = append(cert.Sigs, AckSig{Replica: types.ReplicaID(q), Sig: sig, Chain: chain, ChainDigest: cd})
			}
			for i := 0; i < slots; i++ {
				total += len(EncodeCommitBatch(0, uint64(i+1), payloads[i], cert))
			}
		}
		b.ReportMetric(float64(total)/float64(slots), "bytes/payment")
	})
	b.Run("chain-ref", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = len(EncodeChainDef(chain)) // once per destination per wave
			for i := 0; i < slots; i++ {
				var sigs []refSig
				for q := 0; q < quorum; q++ {
					sigs = append(sigs, refSig{Replica: types.ReplicaID(q), Sig: sig, HasRef: true, Ref: cd, Idx: uint32(i)})
				}
				total += len(EncodeCommitRef(0, uint64(i+1), payloads[i], sigs))
			}
		}
		b.ReportMetric(float64(total)/float64(slots), "bytes/payment")
	})
}

func BenchmarkCommitWireBytes(b *testing.B) {
	// Chain cap 32, quorum 3 (n=4, f=1), 256-byte batch payloads.
	benchCommitWireBytes(b, maxSignBatch, 3, 256)
}
