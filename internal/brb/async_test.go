package brb

import (
	"fmt"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/transport"
	"astro/internal/types"
)

// signCommitFor builds a valid commit message for instance (origin, slot)
// signed by the first three harness replicas — a 2f+1 quorum at n=4.
func signCommitFor(t *testing.T, h *harness, origin types.ReplicaID, slot uint64, payload []byte) []byte {
	t.Helper()
	d := SignedDigest(origin, slot, payload)
	var cert crypto.Certificate
	for _, r := range []types.ReplicaID{0, 1, 2} {
		sig, err := h.keys[r].Sign(d)
		if err != nil {
			t.Fatal(err)
		}
		cert.Add(crypto.PartialSig{Replica: r, Sig: sig})
	}
	return EncodeCommit(origin, slot, payload, cert)
}

// TestSignedDeliveryOrderOutOfOrderVerify is the regression test for the
// asynchronous verification pipeline: commits for slots 3, 2, 1 of one
// origin arrive in reverse order, so their certificate verifications
// complete out of slot order, yet replica 0 must deliver 1, 2, 3.
func TestSignedDeliveryOrderOutOfOrderVerify(t *testing.T) {
	for round := 0; round < 5; round++ { // completion order is scheduler-dependent; try repeatedly
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			h := newHarness(t, protoSigned, 4)
			const slots = 3
			for slot := uint64(slots); slot >= 1; slot-- {
				payload := []byte(fmt.Sprintf("m%d", slot))
				commit := signCommitFor(t, h, 3, slot, payload)
				if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, commit); err != nil {
					t.Fatal(err)
				}
			}
			if got := h.waitDeliveries(slots, 5*time.Second); got != slots {
				t.Fatalf("deliveries = %d, want %d", got, slots)
			}
			dlv := h.deliveriesAt(0)
			if len(dlv) != slots {
				t.Fatalf("replica 0 delivered %d, want %d", len(dlv), slots)
			}
			for i, dv := range dlv {
				if dv.origin != 3 || dv.slot != uint64(i+1) {
					t.Fatalf("delivery %d = origin %d slot %d, want origin 3 slot %d", i, dv.origin, dv.slot, i+1)
				}
				if want := fmt.Sprintf("m%d", i+1); string(dv.payload) != want {
					t.Fatalf("delivery %d payload = %q, want %q", i, dv.payload, want)
				}
			}
		})
	}
}

// TestSignedCommitRetryAfterBadCertificate: a commit whose certificate
// fails verification must not poison the instance — a later well-formed
// commit for the same instance still delivers.
func TestSignedCommitRetryAfterBadCertificate(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	payload := []byte("eventually")

	// Certificate of garbage signatures: structurally fine, cryptographically not.
	var bad crypto.Certificate
	for _, r := range []types.ReplicaID{0, 1, 2} {
		bad.Add(crypto.PartialSig{Replica: r, Sig: []byte("garbage")})
	}
	badCommit := EncodeCommit(3, 1, payload, bad)
	if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, badCommit); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(1, 200*time.Millisecond); got != 0 {
		t.Fatalf("bad certificate delivered: %d", got)
	}

	good := signCommitFor(t, h, 3, 1, payload)
	if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, good); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(1, 5*time.Second); got != 1 {
		t.Fatalf("deliveries after good commit = %d, want 1", got)
	}
}

// TestSignedRedeliveredCommitDeliversOnce: the same commit replayed many
// times delivers exactly once — replays are shed by the delivered and
// in-flight guards before any signature work is spawned.
func TestSignedRedeliveredCommitDeliversOnce(t *testing.T) {
	h := newHarness(t, protoSigned, 4)

	commit := signCommitFor(t, h, 3, 1, []byte("once"))
	for i := 0; i < 5; i++ {
		if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, commit); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.waitDeliveries(1, 5*time.Second); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
	time.Sleep(200 * time.Millisecond)
	if got := h.waitDeliveries(2, 100*time.Millisecond); got != 1 {
		t.Fatalf("replayed commit re-delivered: %d deliveries", got)
	}
}

// TestSignedAckVerificationOffDispatch: an end-to-end broadcast through
// a dedicated pool (so completions demonstrably run there) delivers at
// every replica — the plumbing test for Config.Verifier.
func TestSignedExplicitVerifier(t *testing.T) {
	ver := verifier.New(2)
	defer ver.Close()
	h := newHarness(t, protoSigned, 4, func(c *Config) { c.Verifier = ver })
	if _, err := h.bcs[0].Broadcast([]byte("pooled")); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(4, 5*time.Second); got != 4 {
		t.Fatalf("deliveries = %d, want 4", got)
	}
	hits, misses := ver.MemoStats()
	if misses == 0 {
		t.Fatal("explicit verifier was never consulted")
	}
	// The origin verified each ack individually, so re-verifying its own
	// aggregated certificate when its COMMIT loops back must hit the memo.
	if hits == 0 {
		t.Fatal("origin's own commit certificate produced no memo hits")
	}
}
