package brb

// Benchmarks for the asynchronous/batched ack-sign pipeline.
//
//   - BenchmarkAckSignPipeline compares the serial per-ack ECDSA a
//     dispatch-goroutine signer pays (the pre-PR2 inline path) against the
//     pool-side signer fed by streaming prepares, where pending acks
//     collapse into hash-chain signatures under load.
//   - BenchmarkSignedN4ECDSA runs the full protocol with real ECDSA keys
//     and reports the measured amortization (acks covered per signing
//     operation).

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
	"astro/internal/wire"
)

// BenchmarkAckSignPipeline/inline-ecdsa is the baseline: one ECDSA per
// ack, serial — what the dispatch goroutine used to execute in-line per
// prepare. BenchmarkAckSignPipeline/async-batched streams b.N prepares
// through a replica and measures wall time until acks covering all of
// them have been emitted (signing on the pool, chains under load).
func BenchmarkAckSignPipeline(b *testing.B) {
	b.Run("inline-ecdsa", func(b *testing.B) {
		kp := crypto.MustGenerateKeyPair()
		d := SignedDigest(0, 1, []byte("payload"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := kp.Sign(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("async-batched", func(b *testing.B) {
		net := memnet.New()
		defer net.Close()
		registry := crypto.NewRegistry()
		var keys []*crypto.KeyPair
		peers := make([]types.ReplicaID, 4)
		for i := range peers {
			peers[i] = types.ReplicaID(i)
			keys = append(keys, crypto.MustGenerateKeyPair())
			registry.Add(types.ReplicaID(i), keys[i].Public())
		}
		mux := transport.NewMux(net.Node(transport.ReplicaNode(1)))
		defer mux.Close()
		s, err := NewSigned(Config{
			Mux: mux, Self: 1, Peers: peers, F: 1,
			Deliver:  func(types.ReplicaID, uint64, []byte) {},
			Keys:     keys[1],
			Registry: registry,
		})
		if err != nil {
			b.Fatal(err)
		}
		origin := transport.NewMux(net.Node(transport.ReplicaNode(0)))
		defer origin.Close()
		var covered atomic.Int64
		ackedAll := make(chan struct{}, 1)
		target := int64(b.N)
		origin.Register(transport.ChanBRB, func(_ transport.NodeID, p []byte) {
			r := wire.NewReader(p)
			var n int64
			switch r.U8() {
			case kindAck:
				n = 1
			case kindAckBatch:
				chain, err := decodeChain(r)
				if err != nil {
					return
				}
				n = int64(len(chain))
			}
			if covered.Add(n) >= target {
				select {
				case ackedAll <- struct{}{}:
				default:
				}
			}
		})

		payload := make([]byte, 8192)
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodePrepare(0, uint64(i+1), payload)); err != nil {
				b.Fatal(err)
			}
		}
		select {
		case <-ackedAll:
		case <-time.After(2 * time.Minute):
			b.Fatalf("acks covered %d/%d", covered.Load(), b.N)
		}
		b.StopTimer()
		ops, acks := s.AckSignStats()
		if ops > 0 {
			b.ReportMetric(float64(acks)/float64(ops), "acks/ECDSA")
		}
	})
}

// BenchmarkSignedN4ECDSA is the end-to-end settlement path with real
// ECDSA signatures at N=4: broadcast, chain-batched acks, extended
// commits, FIFO delivery. The acks/ECDSA metric shows how far batch
// signing compresses the sign-side cost under load.
func BenchmarkSignedN4ECDSA(b *testing.B) {
	net := memnet.New()
	defer net.Close()
	peers := make([]types.ReplicaID, 4)
	registry := crypto.NewRegistry()
	var keys []*crypto.KeyPair
	for i := range peers {
		peers[i] = types.ReplicaID(i)
		keys = append(keys, crypto.MustGenerateKeyPair())
		registry.Add(types.ReplicaID(i), keys[i].Public())
	}
	var mu sync.Mutex
	delivered := 0
	cond := sync.NewCond(&mu)
	var bcs []*Signed
	for i := 0; i < 4; i++ {
		mux := transport.NewMux(net.Node(transport.ReplicaNode(types.ReplicaID(i))))
		s, err := NewSigned(Config{
			Mux: mux, Self: types.ReplicaID(i), Peers: peers, F: 1,
			Deliver: func(types.ReplicaID, uint64, []byte) {
				mu.Lock()
				delivered++
				cond.Broadcast()
				mu.Unlock()
			},
			Keys:     keys[i],
			Registry: registry,
		})
		if err != nil {
			b.Fatal(err)
		}
		bcs = append(bcs, s)
	}
	wait := func(total int) {
		mu.Lock()
		for delivered < total {
			cond.Wait()
		}
		mu.Unlock()
	}

	payload := make([]byte, 8192) // a 256-payment batch
	const window = 64
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bcs[0].Broadcast(payload); err != nil {
			b.Fatal(err)
		}
		if i >= window {
			wait((i - window + 1) * 4)
		}
	}
	wait(b.N * 4)
	b.StopTimer()
	var ops, acks uint64
	for _, s := range bcs {
		o, a := s.AckSignStats()
		ops += o
		acks += a
	}
	if ops > 0 {
		b.ReportMetric(float64(acks)/float64(ops), "acks/ECDSA")
	}
}
