package brb

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
)

// certOf builds a certificate from alternating (replica, sig) pairs.
func certOf(r1 types.ReplicaID, s1 []byte, r2 types.ReplicaID, s2 []byte, r3 types.ReplicaID, s3 []byte) crypto.Certificate {
	var c crypto.Certificate
	c.Add(crypto.PartialSig{Replica: r1, Sig: s1})
	c.Add(crypto.PartialSig{Replica: r2, Sig: s2})
	c.Add(crypto.PartialSig{Replica: r3, Sig: s3})
	return c
}

// TestBrachaTotalityPartialPrepare: a Byzantine origin sends PREPARE to
// only three of four replicas — just enough for an echo quorum among
// them. Bracha's totality must deliver the payload at the fourth replica
// too, through echo/ready amplification (paper §IV: without totality the
// partial payments attack would apply; Astro I relies on it).
func TestBrachaTotalityPartialPrepare(t *testing.T) {
	h := newHarness(t, protoBracha, 4)
	// Forge a partial PREPARE from replica 3's identity (it is the
	// "Byzantine" origin; we drive its mux directly). Replica 0 is left
	// out entirely.
	msg := EncodePrepare(3, 1, []byte("partial"))
	for _, target := range []types.ReplicaID{1, 2, 3} {
		if err := h.muxes[3].Send(transport.ReplicaNode(target), transport.ChanBRB, msg); err != nil {
			t.Fatal(err)
		}
	}
	// Replicas 1,2,3 echo to everyone (2f+1 echoes), send READY; replica
	// 0 learns the payload from the echoes/readys and delivers as well.
	if got := h.waitDeliveries(4, 5*time.Second); got != 4 {
		t.Fatalf("deliveries = %d, want 4 (totality)", got)
	}
	checkAgreement(t, h)
	if d := h.deliveriesAt(0); len(d) != 1 || string(d[0].payload) != "partial" {
		t.Fatalf("excluded replica delivered %+v", d)
	}
}

// TestBrachaNoDeliveryBelowEchoQuorum: with PREPAREs reaching fewer than
// a Byzantine quorum of replicas, nobody delivers — also consistent with
// BRB (reliability only binds correct broadcasters).
func TestBrachaNoDeliveryBelowEchoQuorum(t *testing.T) {
	h := newHarness(t, protoBracha, 4)
	msg := EncodePrepare(3, 1, []byte("too-partial"))
	for _, target := range []types.ReplicaID{0, 1} {
		if err := h.muxes[3].Send(transport.ReplicaNode(target), transport.ChanBRB, msg); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	if got := h.waitDeliveries(1, 100*time.Millisecond); got != 0 {
		t.Fatalf("deliveries = %d, want 0", got)
	}
}

// TestSignedNoTotality: the signature-based protocol does not guarantee
// totality — a Byzantine origin that sends COMMIT to a single replica
// makes only that replica deliver. This is exactly the gap the payment
// layer's CREDIT dependency mechanism compensates for.
func TestSignedNoTotality(t *testing.T) {
	h := newHarness(t, protoSigned, 4)

	// The Byzantine origin (replica 3) runs the honest protocol far
	// enough to gather a valid certificate: we use its real broadcaster
	// to collect ACKs, but intercept before COMMIT by crafting the
	// commit ourselves. Simpler: run a full honest broadcast to harvest
	// a valid commit message, then replay a *fresh* instance partially.
	//
	// Craft instance (3, slot 1): send PREPARE to all, collect ACK sigs
	// by observing... instead, easiest faithful construction: sign ACKs
	// ourselves using the harness keys (the adversary controls replica 3
	// plus knows the protocol), building a certificate for a payload the
	// other replicas did acknowledge.
	payload := []byte("selective")
	d := SignedDigest(3, 1, payload)

	// Replicas 0,1,2 will ACK an honest PREPARE; replica 3 (adversary)
	// gathers them but sends COMMIT only to replica 0.
	prep := EncodePrepare(3, 1, payload)
	for _, target := range []types.ReplicaID{0, 1, 2} {
		_ = h.muxes[3].Send(transport.ReplicaNode(target), transport.ChanBRB, prep)
	}
	// The adversary's own signature plus two honest ACKs form the
	// quorum. Build the certificate directly with the harness keys.
	sig3, err := h.keys[3].Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	sig0, err := h.keys[0].Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	sig1, err := h.keys[1].Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	var c = certOf(3, sig3, 0, sig0, 1, sig1)
	commit := EncodeCommit(3, 1, payload, c)
	if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, commit); err != nil {
		t.Fatal(err)
	}

	// Replica 0 delivers; nobody else ever does.
	if got := h.waitDeliveries(1, 5*time.Second); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
	time.Sleep(300 * time.Millisecond)
	if got := h.waitDeliveries(2, 100*time.Millisecond); got != 1 {
		t.Fatalf("unexpected extra deliveries: %d", got)
	}
	if d := h.deliveriesAt(0); len(d) != 1 || string(d[0].payload) != "selective" {
		t.Fatalf("replica 0 deliveries: %+v", d)
	}
}
