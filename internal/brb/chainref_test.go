package brb

// Tests for chain-by-digest references: the CHAINDEF/COMMITREF/CHAINNACK
// codecs, the once-per-destination chain transmission, the NACK -> legacy
// retransmit fallback (never-seen and evicted chains), and the rejection
// of forged references.

import (
	"fmt"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
	"astro/internal/wire"
)

func TestChainRefCodecRoundTrip(t *testing.T) {
	chain := []ChainEntry{
		{Origin: 2, Slot: 5, Digest: types.HashBytes([]byte("a"))},
		{Origin: 2, Slot: 6, Digest: types.HashBytes([]byte("b"))},
	}

	def := EncodeChainDef(chain)
	if len(def) != chainDefSize(chain) {
		t.Fatalf("chaindef size %d, want exact %d", len(def), chainDefSize(chain))
	}
	r := wire.NewReader(def)
	if k := r.U8(); k != kindChainDef {
		t.Fatalf("kind = %d", k)
	}
	back, err := decodeChainDef(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != chain[0] || back[1] != chain[1] {
		t.Fatalf("chaindef round trip mangled: %+v", back)
	}
	// Empty and over-cap definitions are rejected.
	if _, err := decodeChainDef(wire.NewReader(EncodeChainDef(nil)[1:])); err == nil {
		t.Fatal("empty chaindef accepted")
	}
	long := make([]ChainEntry, maxSignBatch+1)
	if _, err := decodeChainDef(wire.NewReader(EncodeChainDef(long)[1:])); err == nil {
		t.Fatal("over-cap chaindef accepted")
	}

	cd := AckChainDigest(chain)
	sigs := []refSig{
		{Replica: 0, Sig: []byte("plain")},
		{Replica: 3, Sig: []byte("chained"), HasRef: true, Ref: cd, Idx: 1},
	}
	msg := EncodeCommitRef(2, 6, []byte("payload"), sigs)
	if len(msg) != commitRefSize([]byte("payload"), sigs) {
		t.Fatalf("commitref size %d, want exact %d", len(msg), commitRefSize([]byte("payload"), sigs))
	}
	r = wire.NewReader(msg)
	if k := r.U8(); k != kindCommitRef {
		t.Fatalf("kind = %d", k)
	}
	if types.ReplicaID(r.U32()) != 2 || r.U64() != 6 {
		t.Fatal("commitref header mangled")
	}
	if string(r.Chunk()) != "payload" {
		t.Fatal("commitref payload mangled")
	}
	gotSigs, err := decodeCommitRef(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSigs) != 2 || gotSigs[0].HasRef || gotSigs[1].Ref != cd || gotSigs[1].Idx != 1 {
		t.Fatalf("commitref sigs mangled: %+v", gotSigs)
	}

	nack := EncodeChainNack(2, 6, []types.Digest{cd})
	if len(nack) != chainNackSize([]types.Digest{cd}) {
		t.Fatalf("nack size %d, want exact %d", len(nack), chainNackSize([]types.Digest{cd}))
	}
	r = wire.NewReader(nack)
	if k := r.U8(); k != kindChainNack {
		t.Fatalf("kind = %d", k)
	}
	if types.ReplicaID(r.U32()) != 2 || r.U64() != 6 {
		t.Fatal("nack header mangled")
	}
	missing, err := decodeChainNack(r)
	if err != nil || len(missing) != 1 || missing[0] != cd {
		t.Fatalf("nack digests mangled: %v %v", missing, err)
	}
}

// TestSignedCommitRefOncePerDestination is the wire-amortization
// acceptance test at the protocol level, under the PR 4 eager-definition
// baseline: a burst of k broadcasts whose acks batch into chains must
// commit through COMMITREFs — the chain crossing the wire once per
// destination (CHAINDEF), not once per slot — with no NACK round trips
// and no legacy fallback.
func TestSignedCommitRefOncePerDestination(t *testing.T) {
	pool := verifier.New(1)
	defer pool.Close()
	h := newHarness(t, protoSigned, 4, func(c *Config) {
		c.Verifier = pool
		c.EagerChainDefs = true
	})

	gate := make(chan struct{})
	entered := make(chan struct{})
	go pool.Async(func() {
		close(entered)
		<-gate
	})
	<-entered

	const k = 6
	for i := 1; i <= k; i++ {
		if _, err := h.bcs[0].Broadcast([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, bc := range h.bcs {
		s := bc.(*Signed)
		deadline := time.Now().Add(5 * time.Second)
		for s.ackSigner.Pending() != k {
			if time.Now().After(deadline) {
				t.Fatalf("pending acks = %d, want %d", s.ackSigner.Pending(), k)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)

	want := 4 * k
	if got := h.waitDeliveries(want, 15*time.Second); got != want {
		t.Fatalf("deliveries = %d, want %d", got, want)
	}

	origin := h.bcs[0].(*Signed)
	st := origin.ChainRefStats()
	if st.RefsSent != uint64(4*k) {
		t.Fatalf("origin sent %d COMMITREFs, want %d (one per slot per destination)", st.RefsSent, 4*k)
	}
	// Each acker signs its k pending acks as ONE chain, so at most 4
	// distinct chains exist; each crosses the wire at most once per
	// destination — against k x quorum x destinations inline copies in the
	// legacy encoding.
	if st.DefsSent == 0 || st.DefsSent > 4*4 {
		t.Fatalf("origin sent %d CHAINDEFs, want 1..16 (once per chain per destination)", st.DefsSent)
	}
	if st.FullSends != 0 || st.NacksReceived != 0 {
		t.Fatalf("legacy fallback engaged without cache misses: %+v", st)
	}
	var hits uint64
	for _, bc := range h.bcs {
		rs := bc.(*Signed).ChainRefStats()
		hits += rs.RefHits
		if rs.NacksSent != 0 {
			t.Fatalf("receiver NACKed during the happy path: %+v", rs)
		}
	}
	if hits == 0 {
		t.Fatal("no reference ever resolved against a chain cache")
	}
	// FIFO preserved through the reference path.
	for r := 0; r < 4; r++ {
		d := h.deliveriesAt(types.ReplicaID(r))
		for i, dv := range d {
			if dv.slot != uint64(i+1) {
				t.Fatalf("replica %d delivery %d = slot %d", r, i, dv.slot)
			}
		}
	}
}

// TestSignedLazyChainDefsDeliverAndSave is the same burst under the PR 9
// lazy default: no definition is sent ahead of a reference, so receivers
// missing a chain demand it (one NACK, answered with the definitions plus
// the reference — never the legacy full form), while the origin itself and
// each acker's own chain resolve without any round trip (ACKBATCH learning
// and sign-time self-priming). Every delivery still completes in FIFO
// order, and the deferred-minus-demanded gap is the definition traffic
// eager mode would have sent for nothing.
func TestSignedLazyChainDefsDeliverAndSave(t *testing.T) {
	pool := verifier.New(1)
	defer pool.Close()
	h := newHarness(t, protoSigned, 4, func(c *Config) { c.Verifier = pool })

	gate := make(chan struct{})
	entered := make(chan struct{})
	go pool.Async(func() {
		close(entered)
		<-gate
	})
	<-entered

	const k = 6
	for i := 1; i <= k; i++ {
		if _, err := h.bcs[0].Broadcast([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, bc := range h.bcs {
		s := bc.(*Signed)
		deadline := time.Now().Add(5 * time.Second)
		for s.ackSigner.Pending() != k {
			if time.Now().After(deadline) {
				t.Fatalf("pending acks = %d, want %d", s.ackSigner.Pending(), k)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)

	want := 4 * k
	if got := h.waitDeliveries(want, 15*time.Second); got != want {
		t.Fatalf("deliveries = %d, want %d", got, want)
	}

	st := h.bcs[0].(*Signed).ChainRefStats()
	if st.FullSends != 0 {
		t.Fatalf("lazy mode fell back to the legacy full form: %+v", st)
	}
	if st.DefsDeferred == 0 {
		t.Fatalf("no definition was ever deferred: %+v", st)
	}
	if st.DefsSent != st.DefsDemanded {
		t.Fatalf("sent %d defs but %d were demanded — an eager send leaked: %+v", st.DefsSent, st.DefsDemanded, st)
	}
	if st.DefsDemanded >= st.DefsDeferred {
		t.Fatalf("lazy mode saved nothing: deferred %d, demanded %d", st.DefsDeferred, st.DefsDemanded)
	}
	// FIFO preserved through parking, NACK answers, and re-sent references.
	for r := 0; r < 4; r++ {
		d := h.deliveriesAt(types.ReplicaID(r))
		for i, dv := range d {
			if dv.slot != uint64(i+1) {
				t.Fatalf("replica %d delivery %d = slot %d", r, i, dv.slot)
			}
		}
	}
}

// refFixture is a lone Signed replica (id 1 of a 4-group) with a delivery
// channel, plus a raw endpoint at node 0 capturing the replica's BRB
// traffic — the stage for forged reference streams.
type refFixture struct {
	registry *crypto.Registry
	keys     []*crypto.KeyPair
	replica  *Signed
	origin   *transport.Mux
	brbMsgs  chan []byte
	dlv      chan delivery
}

func newRefFixture(t *testing.T) *refFixture {
	t.Helper()
	fx := &refFixture{
		registry: crypto.NewRegistry(),
		brbMsgs:  make(chan []byte, 64),
		dlv:      make(chan delivery, 64),
	}
	net := memnet.New()
	t.Cleanup(net.Close)
	pool := verifier.New(2)
	t.Cleanup(pool.Close)
	var peers []types.ReplicaID
	for i := 0; i < 4; i++ {
		kp := crypto.MustGenerateKeyPair()
		fx.keys = append(fx.keys, kp)
		fx.registry.Add(types.ReplicaID(i), kp.Public())
		peers = append(peers, types.ReplicaID(i))
	}
	mux := transport.NewMux(net.Node(transport.ReplicaNode(1)))
	t.Cleanup(mux.Close)
	var err error
	fx.replica, err = NewSigned(Config{
		Mux:   mux,
		Self:  1,
		Peers: peers,
		F:     1,
		Deliver: func(origin types.ReplicaID, slot uint64, payload []byte) {
			fx.dlv <- delivery{origin: origin, slot: slot, payload: payload}
		},
		Keys:     fx.keys[1],
		Registry: fx.registry,
		Verifier: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.origin = transport.NewMux(net.Node(transport.ReplicaNode(0)))
	t.Cleanup(fx.origin.Close)
	fx.origin.Register(transport.ChanBRB, func(_ transport.NodeID, p []byte) {
		buf := make([]byte, len(p))
		copy(buf, p)
		fx.brbMsgs <- buf
	})
	return fx
}

// chainCert builds a quorum certificate of chain signatures by the given
// replicas over chain.
func (fx *refFixture) chainCert(t *testing.T, chain []ChainEntry, signers ...int) AckCert {
	t.Helper()
	cd := AckChainDigest(chain)
	var cert AckCert
	for _, i := range signers {
		sig, err := fx.keys[i].Sign(cd)
		if err != nil {
			t.Fatal(err)
		}
		cert.Sigs = append(cert.Sigs, AckSig{Replica: types.ReplicaID(i), Sig: sig, Chain: chain, ChainDigest: cd})
	}
	return cert
}

// refSigsFor converts a chain certificate into the reference form for the
// instance at chain index idx.
func refSigsFor(cert AckCert, idx uint32) []refSig {
	var sigs []refSig
	for _, a := range cert.Sigs {
		sigs = append(sigs, refSig{Replica: a.Replica, Sig: a.Sig, HasRef: true, Ref: a.ChainDigest, Idx: idx})
	}
	return sigs
}

func (fx *refFixture) expectNack(t *testing.T, slot uint64, want types.Digest) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m := <-fx.brbMsgs:
			r := wire.NewReader(m)
			if r.U8() != kindChainNack {
				continue // acks etc. from the replica's own protocol
			}
			if types.ReplicaID(r.U32()) != 0 || r.U64() != slot {
				t.Fatal("NACK for wrong instance")
			}
			missing, err := decodeChainNack(r)
			if err != nil || len(missing) != 1 || missing[0] != want {
				t.Fatalf("NACK digests = %v, %v", missing, err)
			}
			return
		case <-deadline:
			t.Fatal("no CHAINNACK for unresolvable COMMITREF")
		}
	}
}

func (fx *refFixture) expectDelivery(t *testing.T, slot uint64, payload string) {
	t.Helper()
	select {
	case d := <-fx.dlv:
		if d.origin != 0 || d.slot != slot || string(d.payload) != payload {
			t.Fatalf("delivered %+v, want slot %d %q", d, slot, payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("slot %d never delivered", slot)
	}
}

// TestCommitRefUnknownChainNacksAndRecovers: a COMMITREF naming a chain
// the receiver has never seen must trigger a CHAINNACK naming the digest,
// the legacy COMMITBATCH retransmit must deliver AND re-prime the chain
// cache — so the next COMMITREF over the same chain resolves with no
// further round trip.
func TestCommitRefUnknownChainNacksAndRecovers(t *testing.T) {
	fx := newRefFixture(t)
	p1, p2 := []byte("wave-slot-1"), []byte("wave-slot-2")
	chain := []ChainEntry{
		{Origin: 0, Slot: 1, Digest: SignedDigest(0, 1, p1)},
		{Origin: 0, Slot: 2, Digest: SignedDigest(0, 2, p2)},
	}
	cert := fx.chainCert(t, chain, 0, 2, 3)
	cd := AckChainDigest(chain)

	// Reference without definition: NACK, no delivery.
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeCommitRef(0, 1, p1, refSigsFor(cert, 0))); err != nil {
		t.Fatal(err)
	}
	fx.expectNack(t, 1, cd)
	select {
	case d := <-fx.dlv:
		t.Fatalf("unresolvable commit delivered: %+v", d)
	default:
	}

	// The origin's fallback: the self-contained legacy form. It delivers
	// and re-primes the cache with the inline chain.
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeCommitBatch(0, 1, p1, cert)); err != nil {
		t.Fatal(err)
	}
	fx.expectDelivery(t, 1, string(p1))

	// Slot 2 through the reference alone — the cache now knows the chain.
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeCommitRef(0, 2, p2, refSigsFor(cert, 1))); err != nil {
		t.Fatal(err)
	}
	fx.expectDelivery(t, 2, string(p2))
	if st := fx.replica.ChainRefStats(); st.RefHits == 0 || st.NacksSent != 1 {
		t.Fatalf("stats after recovery: %+v", st)
	}
}

// TestCommitRefEvictionDegradesToFull: with the per-peer cache shrunk to
// one chain, defining a second chain evicts the first, and a reference to
// the evicted chain must NACK — the explicit eviction leg of the fallback.
func TestCommitRefEvictionDegradesToFull(t *testing.T) {
	fx := newRefFixture(t)
	fx.replica.chainsKnown.SetCapacity(1) // before any traffic: per-peer LRUs build lazily

	p1 := []byte("evicted-slot")
	chainA := []ChainEntry{{Origin: 0, Slot: 1, Digest: SignedDigest(0, 1, p1)}}
	chainB := []ChainEntry{{Origin: 0, Slot: 9, Digest: types.HashBytes([]byte("other"))}}
	certA := fx.chainCert(t, chainA, 0, 2, 3)

	for _, def := range [][]byte{EncodeChainDef(chainA), EncodeChainDef(chainB)} {
		if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, def); err != nil {
			t.Fatal(err)
		}
	}
	// chainB's definition evicted chainA (capacity 1): the reference to
	// chainA must NACK, and the legacy resend must still deliver.
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeCommitRef(0, 1, p1, refSigsFor(certA, 0))); err != nil {
		t.Fatal(err)
	}
	fx.expectNack(t, 1, AckChainDigest(chainA))
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeCommitBatch(0, 1, p1, certA)); err != nil {
		t.Fatal(err)
	}
	fx.expectDelivery(t, 1, string(p1))
}

// TestCommitRefForgeries: references that resolve but do not endorse the
// instance must not deliver — a chain whose indexed entry names a
// different payload digest, and an index beyond the chain's length.
func TestCommitRefForgeries(t *testing.T) {
	fx := newRefFixture(t)
	real := []byte("real-payload")
	chain := []ChainEntry{{Origin: 0, Slot: 1, Digest: SignedDigest(0, 1, []byte("other-payload"))}}
	cert := fx.chainCert(t, chain, 0, 2, 3)
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeChainDef(chain)); err != nil {
		t.Fatal(err)
	}

	// Entry digest does not match the committed payload.
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeCommitRef(0, 1, real, refSigsFor(cert, 0))); err != nil {
		t.Fatal(err)
	}
	// Index out of the chain's range.
	if err := fx.origin.Send(transport.ReplicaNode(1), transport.ChanBRB, EncodeCommitRef(0, 1, real, refSigsFor(cert, 7))); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-fx.dlv:
		t.Fatalf("forged reference delivered: %+v", d)
	case <-time.After(300 * time.Millisecond):
	}
}
