package brb

// Adversarial wire helpers: the pieces a Byzantine replica behavior
// (internal/sim) needs to inspect, forge, and corrupt BRB traffic without
// re-implementing the codecs. Everything here is wire-level only — no
// protocol state — so a behavior can interpose on raw frames at the
// transport boundary. The same helpers seed the fuzz corpora with
// realistic hostile inputs.

import (
	"astro/internal/crypto"
	"astro/internal/types"
	"astro/internal/wire"
)

// Exported message-kind bytes (first byte of every ChanBRB frame), for
// behaviors that dispatch on frame kind.
const (
	KindPrepare     = kindPrepare
	KindEcho        = kindEcho
	KindReady       = kindReady
	KindAck         = kindAck
	KindCommit      = kindCommit
	KindAckBatch    = kindAckBatch
	KindCommitBatch = kindCommitBatch
	KindChainDef    = kindChainDef
	KindCommitRef   = kindCommitRef
	KindChainNack   = kindChainNack
)

// FrameKind returns a frame's message-kind byte (0 for an empty frame).
func FrameKind(frame []byte) byte {
	if len(frame) == 0 {
		return 0
	}
	return frame[0]
}

// IsCommitKind reports whether kind carries a commit certificate in any
// of its three wire forms — the frames a commit-withholding adversary
// suppresses.
func IsCommitKind(kind byte) bool {
	return kind == kindCommit || kind == kindCommitBatch || kind == kindCommitRef
}

// DecodePrepare parses a PREPARE frame (kind byte included) into its
// instance coordinates and payload. The payload aliases the frame.
func DecodePrepare(frame []byte) (origin types.ReplicaID, slot uint64, payload []byte, ok bool) {
	r := wire.NewReader(frame)
	if r.U8() != kindPrepare {
		return 0, 0, nil, false
	}
	origin = types.ReplicaID(r.U32())
	slot = r.U64()
	payload = r.Chunk()
	if r.Err() != nil {
		return 0, 0, nil, false
	}
	return origin, slot, payload, true
}

// DecodeAck parses an ACK frame (kind byte included). The signature
// aliases the frame. The acking replica is not in the frame — endpoints
// identify senders by transport address.
func DecodeAck(frame []byte) (origin types.ReplicaID, slot uint64, digest types.Digest, sig []byte, ok bool) {
	r := wire.NewReader(frame)
	if r.U8() != kindAck {
		return 0, 0, types.Digest{}, nil, false
	}
	origin = types.ReplicaID(r.U32())
	slot = r.U64()
	digest = r.Bytes32()
	sig = r.Chunk()
	if r.Err() != nil {
		return 0, 0, types.Digest{}, nil, false
	}
	return origin, slot, digest, sig, true
}

// ForgeAck produces the ACK frame a colluding replica emits to endorse an
// arbitrary payload — including one that conflicts with a payload it
// already acknowledged, which an honest handlePrepare never does. The
// frame must be sent from the forger's own endpoint: receivers identify
// the acking replica by transport address.
func ForgeAck(kp *crypto.KeyPair, origin types.ReplicaID, slot uint64, payload []byte) ([]byte, error) {
	d := SignedDigest(origin, slot, payload)
	sig, err := kp.Sign(d)
	if err != nil {
		return nil, err
	}
	return EncodeAck(origin, slot, d, sig), nil
}

// CorruptChainRefs returns a structurally valid mutation of a CHAINDEF or
// COMMITREF frame with its chain digests perturbed by salt — the forged
// chain-reference attack. A corrupted CHAINDEF caches a chain no honest
// signature will reference; a corrupted COMMITREF references a chain the
// receiver does not know, forcing the CHAINNACK → full-form fallback.
// Frames of any other kind return (nil, false).
func CorruptChainRefs(frame []byte, salt byte) ([]byte, bool) {
	if salt == 0 {
		salt = 0xa5
	}
	switch FrameKind(frame) {
	case kindChainDef:
		chain, err := decodeChainDef(wire.NewReader(frame[1:]))
		if err != nil {
			return nil, false
		}
		for i := range chain {
			chain[i].Digest[0] ^= salt
			chain[i].Slot ^= uint64(salt) << 40
		}
		return EncodeChainDef(chain), true
	case kindCommitRef:
		r := wire.NewReader(frame)
		r.U8()
		origin := types.ReplicaID(r.U32())
		slot := r.U64()
		payload := r.Chunk()
		if r.Err() != nil {
			return nil, false
		}
		sigs, err := decodeCommitRef(r)
		if err != nil {
			return nil, false
		}
		for i := range sigs {
			if sigs[i].HasRef {
				sigs[i].Ref[0] ^= salt
				sigs[i].Idx += uint32(salt)
			}
		}
		return EncodeCommitRef(origin, slot, payload, sigs), true
	default:
		return nil, false
	}
}

// NackFor builds the CHAINNACK a hostile receiver would answer a
// COMMITREF with, naming every chain digest the commit references — the
// building block of a NACK storm. Returns (nil, false) for frames of any
// other kind or commits with no references.
func NackFor(frame []byte) ([]byte, bool) {
	if FrameKind(frame) != kindCommitRef {
		return nil, false
	}
	r := wire.NewReader(frame)
	r.U8()
	origin := types.ReplicaID(r.U32())
	slot := r.U64()
	r.Chunk() // payload
	if r.Err() != nil {
		return nil, false
	}
	sigs, err := decodeCommitRef(r)
	if err != nil {
		return nil, false
	}
	var missing []types.Digest
	seen := make(map[types.Digest]struct{})
	for _, s := range sigs {
		if !s.HasRef {
			continue
		}
		if _, dup := seen[s.Ref]; dup {
			continue
		}
		seen[s.Ref] = struct{}{}
		missing = append(missing, s.Ref)
	}
	if len(missing) == 0 {
		return nil, false
	}
	return EncodeChainNack(origin, slot, missing), true
}
