package brb

import (
	"bytes"
	"testing"

	"astro/internal/types"
	"astro/internal/wire"
)

func fuzzChain() []ChainEntry {
	return []ChainEntry{
		{Origin: 0, Slot: 7, Digest: types.Digest{0x01}},
		{Origin: 3, Slot: 9, Digest: types.Digest{0x02}},
	}
}

// FuzzDecodeChainDef exercises the CHAINDEF decoder. The chain encoding
// is fixed-width and therefore canonical: any payload that decodes must
// re-encode to exactly the input bytes.
func FuzzDecodeChainDef(f *testing.F) {
	f.Add(EncodeChainDef(fuzzChain())[1:]) // after the kind byte
	f.Add([]byte{0, 0, 0, 0})              // empty chain: rejected
	// Adversarial seed: the forge-refs behavior's digest-corrupted form —
	// structurally valid, semantically hostile.
	if c, ok := CorruptChainRefs(EncodeChainDef(fuzzChain()), 0x5a); ok {
		f.Add(c[1:])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		chain, err := decodeChainDef(wire.NewReader(data))
		if err != nil {
			return
		}
		if len(chain) == 0 || len(chain) > maxSignBatch {
			t.Fatalf("accepted chain of %d outside [1,%d]", len(chain), maxSignBatch)
		}
		if !bytes.Equal(EncodeChainDef(chain)[1:], data) {
			t.Fatal("decoded chain does not re-encode to input")
		}
	})
}

// FuzzDecodeAckCert exercises the legacy self-contained certificate
// decoder: per-signature chain contexts of arbitrary shape must never
// panic and must respect the signature and chain caps.
func FuzzDecodeAckCert(f *testing.F) {
	cert := AckCert{Sigs: []AckSig{
		{Replica: 1, Sig: []byte("plain-sig")},
		{Replica: 2, Sig: []byte("chain-sig"), Chain: fuzzChain()},
	}}
	w := wire.NewWriter(ackCertSize(cert))
	appendAckCert(w, cert)
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		cert, err := decodeAckCert(wire.NewReader(data))
		if err != nil {
			return
		}
		if len(cert.Sigs) > maxAckCertSigs {
			t.Fatalf("accepted %d signatures over cap", len(cert.Sigs))
		}
		for _, s := range cert.Sigs {
			if len(s.Chain) > maxAckChain {
				t.Fatalf("accepted chain of %d over cap", len(s.Chain))
			}
		}
	})
}

// FuzzDecodeCommitRef exercises the interned-reference certificate form:
// mixed plain and by-digest signatures, including unknown reference
// modes.
func FuzzDecodeCommitRef(f *testing.F) {
	sigs := []refSig{
		{Replica: 1, Sig: []byte("plain")},
		{Replica: 2, Sig: []byte("by-ref"), HasRef: true, Ref: types.Digest{0x05}, Idx: 1},
	}
	w := wire.NewWriter(64)
	w.U32(uint32(len(sigs)))
	for _, s := range sigs {
		w.U32(uint32(s.Replica))
		w.Chunk(s.Sig)
		if s.HasRef {
			w.U8(refModeChain)
			w.Bytes32(s.Ref)
			w.U32(s.Idx)
		} else {
			w.U8(refModePlain)
		}
	}
	f.Add(w.Bytes())
	// Adversarial seed: a full COMMITREF frame run through the forge-refs
	// corruptor, sliced back to the signature section this decoder reads
	// (header, then the one-byte payload chunk).
	if c, ok := CorruptChainRefs(EncodeCommitRef(2, 6, []byte("p"), sigs), 0x77); ok {
		f.Add(c[headerSize+4+1:])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sigs, err := decodeCommitRef(wire.NewReader(data))
		if err != nil {
			return
		}
		if len(sigs) > maxAckCertSigs {
			t.Fatalf("accepted %d signatures over cap", len(sigs))
		}
	})
}

// FuzzDecodeChainNack exercises the NACK digest-list decoder.
func FuzzDecodeChainNack(f *testing.F) {
	f.Add(EncodeChainNack(1, 4, []types.Digest{{0x0a}, {0x0b}})[headerSize:])
	// Adversarial seed: the NACK a storming receiver would synthesize
	// from a reference-form commit it claims not to resolve.
	hostile := []refSig{{Replica: 2, Sig: []byte("s"), HasRef: true, Ref: types.Digest{0x0c}, Idx: 0}}
	if n, ok := NackFor(EncodeCommitRef(1, 4, []byte("x"), hostile)); ok {
		f.Add(n[headerSize:])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		missing, err := decodeChainNack(wire.NewReader(data))
		if err != nil {
			return
		}
		if len(missing) > maxNackDigests {
			t.Fatalf("accepted %d digests over cap", len(missing))
		}
	})
}

// FuzzDecodeCommitTab exercises the tabled (PR 9) commit form: a
// message-level chain table with signatures naming their chain by index.
// Decoded signatures must share the table's chain backing, and every
// bound — table size, per-chain length, signature count, index range —
// must hold on whatever decodes.
func FuzzDecodeCommitTab(f *testing.F) {
	cert := AckCert{Sigs: []AckSig{
		{Replica: 1, Sig: []byte("plain-sig")},
		{Replica: 2, Sig: []byte("chain-sig"), Chain: fuzzChain()},
		{Replica: 3, Sig: []byte("chain-sig-2"), Chain: fuzzChain()},
	}}
	// Canonical seed: full frame minus header and the payload chunk
	// (U32 length + 1 payload byte), which onMessage consumes first.
	f.Add(EncodeCommitTab(1, 4, []byte("p"), cert)[headerSize+4+1:])

	// Adversarial seeds. A signature naming an index past the table:
	w := wire.NewWriter(128)
	w.U32(1)
	for _, e := range fuzzChain() {
		w.U32(uint32(e.Origin))
		w.U64(e.Slot)
		w.Bytes32(e.Digest)
	}
	w.U32(1)
	w.U32(2)
	w.Chunk([]byte("sig"))
	w.U32(7) // table has one entry
	f.Add(w.Bytes())
	// A table entry of length zero:
	w = wire.NewWriter(16)
	w.U32(1)
	w.U32(0)
	f.Add(w.Bytes())
	// A table count past the cap:
	w = wire.NewWriter(8)
	w.U32(maxCommitTabChains + 1)
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		cert, table, digests, err := decodeCommitTab(wire.NewReader(data))
		if err != nil {
			return
		}
		if len(table) > maxCommitTabChains || len(digests) != len(table) {
			t.Fatalf("table %d / digests %d out of shape", len(table), len(digests))
		}
		for _, ch := range table {
			if len(ch) == 0 || len(ch) > maxSignBatch {
				t.Fatalf("accepted table chain of %d outside [1,%d]", len(ch), maxSignBatch)
			}
		}
		if len(cert.Sigs) > maxAckCertSigs {
			t.Fatalf("accepted %d signatures over cap", len(cert.Sigs))
		}
		for _, s := range cert.Sigs {
			if s.Chain == nil {
				continue
			}
			shared := false
			for _, ch := range table {
				if &s.Chain[0] == &ch[0] {
					shared = true
					break
				}
			}
			if !shared {
				t.Fatal("decoded signature chain does not share table backing")
			}
		}
	})
}
