package types

import "testing"

func TestPeerCacheIsolatesPeers(t *testing.T) {
	c := NewPeerCache[string](2)
	d1, d2, d3 := HashBytes([]byte("a")), HashBytes([]byte("b")), HashBytes([]byte("c"))
	c.Put(1, d1, "p1-a")
	c.Put(2, d1, "p2-a")
	// Filling peer 2's LRU must not evict peer 1's entries.
	c.Put(2, d2, "p2-b")
	c.Put(2, d3, "p2-c") // evicts p2's d1
	if _, ok := c.Get(2, d1); ok {
		t.Fatal("peer 2's oldest entry not evicted")
	}
	if v, ok := c.Get(1, d1); !ok || v != "p1-a" {
		t.Fatal("peer 1's entry was disturbed by peer 2's churn")
	}
	if !c.HasPeer(2) || c.HasPeer(9) {
		t.Fatal("HasPeer wrong")
	}
	// Get/Contains on an unknown peer must not allocate a cache.
	if _, ok := c.Get(9, d1); ok || c.Contains(9, d1) || c.HasPeer(9) {
		t.Fatal("probe of unknown peer allocated state")
	}
}

func TestPeerCacheInternReturnsCanonical(t *testing.T) {
	c := NewPeerCache[[]int](2)
	d := HashBytes([]byte("chain"))
	first := []int{1, 2, 3}
	if got := c.Intern(1, d, first); &got[0] != &first[0] {
		t.Fatal("first intern did not adopt the given slice")
	}
	second := []int{1, 2, 3}
	if got := c.Intern(1, d, second); &got[0] != &first[0] {
		t.Fatal("second intern did not return the canonical slice")
	}
}

func TestPeerCacheSetCapacityAffectsNewPeers(t *testing.T) {
	c := NewPeerCache[int](4)
	d1, d2 := HashBytes([]byte("a")), HashBytes([]byte("b"))
	c.Put(1, d1, 1)
	c.SetCapacity(1)
	c.Put(2, d1, 1)
	c.Put(2, d2, 2) // capacity 1: evicts d1
	if c.Contains(2, d1) {
		t.Fatal("new peer did not get the updated capacity")
	}
	c.Put(1, d2, 2)
	if !c.Contains(1, d1) || !c.Contains(1, d2) {
		t.Fatal("existing peer's capacity changed retroactively")
	}
	c.Delete(1, d1)
	if c.Contains(1, d1) {
		t.Fatal("delete failed")
	}
	c.Delete(9, d1) // unknown peer: no-op
}
