package types

// ShardID identifies a shard: a subset of replicas associated with a
// subset of all exclusive logs (paper §V). Non-sharded deployments use a
// single shard with ID 0.
type ShardID int

// SingleShard maps every client to shard 0 (full replication).
func SingleShard(ClientID) ShardID { return 0 }

// HashSharding distributes clients round-robin over k shards; with
// uniformly drawn client identities this balances xlogs across shards.
func HashSharding(k int) func(ClientID) ShardID {
	if k < 1 {
		k = 1
	}
	return func(c ClientID) ShardID { return ShardID(uint64(c) % uint64(k)) }
}

// MixedSharding is HashSharding behind a bit-mixing finalizer
// (splitmix64): identities that are themselves arithmetically partitioned
// — e.g. the clients of one shard under modulo sharding, which share a
// residue class — still spread uniformly over the k buckets. The
// settlement engine stripes accounts with it so stripe and shard
// assignments cannot correlate.
func MixedSharding(k int) func(ClientID) ShardID {
	if k < 1 {
		k = 1
	}
	return func(c ClientID) ShardID { return ShardID(mix64(uint64(c)) % uint64(k)) }
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche, so every
// input bit influences every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
