package types

// ShardID identifies a shard: a subset of replicas associated with a
// subset of all exclusive logs (paper §V). Non-sharded deployments use a
// single shard with ID 0.
type ShardID int

// SingleShard maps every client to shard 0 (full replication).
func SingleShard(ClientID) ShardID { return 0 }

// HashSharding distributes clients round-robin over k shards; with
// uniformly drawn client identities this balances xlogs across shards.
func HashSharding(k int) func(ClientID) ShardID {
	if k < 1 {
		k = 1
	}
	return func(c ClientID) ShardID { return ShardID(uint64(c) % uint64(k)) }
}
