package types

import "sync/atomic"

// RefStats counts one side's chain-reference traffic (PR 4): both the BRB
// commit path and the credit channel run the same CHAINDEF / reference /
// NACK protocol, so they share one counter shape (brb.ChainRefStats and
// core.CreditRefStats alias it, and the sim harness aggregates either).
type RefStats struct {
	// DefsSent / RefsSent / FullSends count outbound chain definitions,
	// reference-form sends, and self-contained legacy sends (including
	// NACK-triggered retransmits).
	DefsSent, RefsSent, FullSends uint64
	// RefHits / RefMisses count inbound reference resolutions against the
	// receiver's chain cache.
	RefHits, RefMisses uint64
	// NacksSent / NacksReceived count the fallback round trips.
	NacksSent, NacksReceived uint64
	// DefsDeferred counts chain definitions withheld by the lazy-CHAINDEF
	// mode (PR 9): a reference was sent where the eager mode would also
	// have sent the definition. DefsDemanded counts definitions later sent
	// because a NACK demanded them; Deferred − Demanded is the definition
	// traffic the receivers never needed.
	DefsDeferred, DefsDemanded uint64
}

// Add accumulates other into s (for cluster-wide aggregation).
func (s *RefStats) Add(other RefStats) {
	s.DefsSent += other.DefsSent
	s.RefsSent += other.RefsSent
	s.FullSends += other.FullSends
	s.RefHits += other.RefHits
	s.RefMisses += other.RefMisses
	s.NacksSent += other.NacksSent
	s.NacksReceived += other.NacksReceived
	s.DefsDeferred += other.DefsDeferred
	s.DefsDemanded += other.DefsDemanded
}

// RefCounters is the atomic backing of RefStats, embedded by the protocol
// state that updates it concurrently.
type RefCounters struct {
	DefsSent, RefsSent, FullSends atomic.Uint64
	RefHits, RefMisses            atomic.Uint64
	NacksSent, NacksReceived      atomic.Uint64
	DefsDeferred, DefsDemanded    atomic.Uint64
}

// Snapshot returns a consistent-enough copy of the counters (each field
// is read atomically; cross-field skew is fine for statistics).
func (c *RefCounters) Snapshot() RefStats {
	return RefStats{
		DefsSent:      c.DefsSent.Load(),
		RefsSent:      c.RefsSent.Load(),
		FullSends:     c.FullSends.Load(),
		RefHits:       c.RefHits.Load(),
		RefMisses:     c.RefMisses.Load(),
		NacksSent:     c.NacksSent.Load(),
		NacksReceived: c.NacksReceived.Load(),
		DefsDeferred:  c.DefsDeferred.Load(),
		DefsDemanded:  c.DefsDemanded.Load(),
	}
}
