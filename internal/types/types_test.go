package types

import (
	"testing"
	"testing/quick"
)

func TestPaymentRoundTrip(t *testing.T) {
	p := Payment{Spender: 7, Seq: 42, Beneficiary: 9, Amount: 1234}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if len(data) != PaymentWireSize {
		t.Fatalf("encoded size = %d, want %d", len(data), PaymentWireSize)
	}
	var q Payment
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q != p {
		t.Fatalf("round trip mismatch: got %v, want %v", q, p)
	}
}

func TestPaymentRoundTripProperty(t *testing.T) {
	f := func(s, b uint64, n uint64, x uint64) bool {
		p := Payment{Spender: ClientID(s), Seq: Seq(n), Beneficiary: ClientID(b), Amount: Amount(x)}
		data, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var q Payment
		if err := q.UnmarshalBinary(data); err != nil {
			return false
		}
		return p == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentUnmarshalErrors(t *testing.T) {
	var p Payment
	if err := p.UnmarshalBinary(nil); err == nil {
		t.Error("unmarshal nil: want error")
	}
	if err := p.UnmarshalBinary(make([]byte, PaymentWireSize-1)); err == nil {
		t.Error("unmarshal short: want error")
	}
	if err := p.UnmarshalBinary(make([]byte, PaymentWireSize+1)); err == nil {
		t.Error("unmarshal long: want error")
	}
}

func TestHashPaymentDistinct(t *testing.T) {
	a := Payment{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 10}
	b := a
	b.Amount = 11
	if HashPayment(a) == HashPayment(b) {
		t.Error("distinct payments hash equal")
	}
	if HashPayment(a) != HashPayment(a) {
		t.Error("hash not deterministic")
	}
}

func TestIDString(t *testing.T) {
	id := PaymentID{Spender: 3, Seq: 9}
	if got, want := id.String(), "(3,9)"; got != want {
		t.Errorf("PaymentID.String() = %q, want %q", got, want)
	}
	p := Payment{Spender: 1, Seq: 2, Beneficiary: 3, Amount: 4}
	if p.ID() != (PaymentID{Spender: 1, Seq: 2}) {
		t.Errorf("Payment.ID() = %v", p.ID())
	}
}

func TestQuorumArithmetic(t *testing.T) {
	cases := []struct {
		n, f, q int
	}{
		{4, 1, 3},
		{7, 2, 5},
		{10, 3, 7},
		{49, 16, 33},
		{52, 17, 35},
		{100, 33, 67},
	}
	for _, c := range cases {
		if got := MaxFaults(c.n); got != c.f {
			t.Errorf("MaxFaults(%d) = %d, want %d", c.n, got, c.f)
		}
		if got := QuorumSize(c.f); got != c.q {
			t.Errorf("QuorumSize(%d) = %d, want %d", c.f, got, c.q)
		}
	}
	if MaxFaults(0) != 0 {
		t.Error("MaxFaults(0) != 0")
	}
}

func TestQuorumIntersectionProperty(t *testing.T) {
	// Any two quorums of size 2f+1 among 3f+1 replicas intersect in at
	// least f+1 replicas, hence in at least one correct replica.
	f := func(fRaw uint8) bool {
		faults := int(fRaw%64) + 1
		n := 3*faults + 1
		q := QuorumSize(faults)
		// |A ∩ B| >= |A| + |B| - n = 2(2f+1) - (3f+1) = f+1
		return 2*q-n >= faults+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixedShardingSpreadsResidueClasses(t *testing.T) {
	// Clients of one shard under modulo sharding share a residue class;
	// MixedSharding must still spread them across all k buckets (plain
	// HashSharding would collapse them into k/gcd(k, shards) buckets).
	const buckets = 16
	stripe := MixedSharding(buckets)
	for _, shards := range []int{4, 8, 16} {
		used := make(map[ShardID]int)
		for i := 0; i < 64*buckets; i++ {
			c := ClientID(i*shards + 3) // residue class 3 mod shards
			used[stripe(c)]++
		}
		if len(used) != buckets {
			t.Fatalf("shards=%d: residue class hit only %d of %d buckets", shards, len(used), buckets)
		}
	}
	// Determinism and range.
	if MixedSharding(buckets)(12345) != MixedSharding(buckets)(12345) {
		t.Fatal("MixedSharding not deterministic")
	}
	if s := MixedSharding(1)(99); s != 0 {
		t.Fatalf("single bucket returned %d", s)
	}
}
