package types

// PeerCache is the two-level bounded cache of the chain-reference protocol
// (PR 4), shared by the BRB commit path and the credit channel: per peer,
// an LRU of values keyed by content digest. Per-peer bounding is the
// abuse containment — one peer's definitions can never evict another's —
// and the peer map itself is bounded by whatever membership gate admits
// senders (BRB group membership, the key registry).
//
// A PeerCache is NOT synchronized; the owning protocol state guards it
// with the lock that already covers its reference bookkeeping.
type PeerCache[V any] struct {
	capacity int
	m        map[ReplicaID]*LRU[Digest, V]
}

// NewPeerCache returns an empty cache whose per-peer LRUs hold at most
// capacity entries each.
func NewPeerCache[V any](capacity int) *PeerCache[V] {
	return &PeerCache[V]{capacity: capacity, m: make(map[ReplicaID]*LRU[Digest, V])}
}

// SetCapacity changes the per-peer capacity for LRUs created from now on
// (a test hook — call it before any traffic; existing LRUs keep theirs).
func (c *PeerCache[V]) SetCapacity(n int) { c.capacity = n }

// lru returns peer's LRU, creating it on first use.
func (c *PeerCache[V]) lru(peer ReplicaID) *LRU[Digest, V] {
	l, ok := c.m[peer]
	if !ok {
		l = NewLRU[Digest, V](c.capacity)
		c.m[peer] = l
	}
	return l
}

// Put caches v for peer under d, marking it most recently used.
func (c *PeerCache[V]) Put(peer ReplicaID, d Digest, v V) { c.lru(peer).Put(d, v) }

// Intern returns the canonical value for (peer, d): the cached one when
// present (touched), otherwise v after caching it — so every holder of
// one peer's chain shares a single backing.
func (c *PeerCache[V]) Intern(peer ReplicaID, d Digest, v V) V {
	l := c.lru(peer)
	if cached, ok := l.Get(d); ok {
		return cached
	}
	l.Put(d, v)
	return v
}

// Get resolves (peer, d), marking it most recently used on a hit. An
// unknown peer allocates nothing.
func (c *PeerCache[V]) Get(peer ReplicaID, d Digest) (V, bool) {
	l, ok := c.m[peer]
	if !ok {
		var zero V
		return zero, false
	}
	return l.Get(d)
}

// GetAny resolves d against every peer's section, touching the entry on a
// hit. Sound only for content-addressed caches — the chain-reference
// protocol recomputes each digest from the learned content, so a chain
// cached under ANY peer is the chain, whoever references it. Cost is one
// LRU probe per known peer (membership-bounded); the lazy-CHAINDEF mode
// uses it so a chain defined once resolves references from every origin.
func (c *PeerCache[V]) GetAny(d Digest) (V, bool) {
	for _, l := range c.m {
		if v, ok := l.Get(d); ok {
			return v, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether (peer, d) is cached, touching it on a hit —
// the sender-side probe that keeps sent-sets aging in lockstep with the
// receiver's cache. An unknown peer allocates nothing.
func (c *PeerCache[V]) Contains(peer ReplicaID, d Digest) bool {
	l, ok := c.m[peer]
	if !ok {
		return false
	}
	return l.Contains(d)
}

// Delete drops (peer, d), if cached.
func (c *PeerCache[V]) Delete(peer ReplicaID, d Digest) {
	if l, ok := c.m[peer]; ok {
		l.Delete(d)
	}
}

// HasPeer reports whether a per-peer LRU exists for peer (for tests
// asserting that membership-gated senders allocate nothing).
func (c *PeerCache[V]) HasPeer(peer ReplicaID) bool {
	_, ok := c.m[peer]
	return ok
}
