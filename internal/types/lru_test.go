package types

import "testing"

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU[int, string](3)
	l.Put(1, "a")
	l.Put(2, "b")
	l.Put(3, "c")
	// Touch 1 so 2 becomes the eviction victim.
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	l.Put(4, "d")
	if _, ok := l.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := l.Get(k); !ok {
			t.Fatalf("%d missing after eviction of 2", k)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
}

func TestLRUPutReplacesAndTouches(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 10)
	l.Put(2, 20)
	l.Put(1, 11) // replace refreshes recency
	l.Put(3, 30) // evicts 2, not 1
	if v, ok := l.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	if _, ok := l.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
}

func TestLRUContainsTouches(t *testing.T) {
	l := NewLRU[string, struct{}](2)
	l.Put("a", struct{}{})
	l.Put("b", struct{}{})
	if !l.Contains("a") {
		t.Fatal("a missing")
	}
	l.Put("c", struct{}{}) // evicts b (a was touched)
	if l.Contains("b") {
		t.Fatal("b should have been evicted")
	}
	if !l.Contains("a") || !l.Contains("c") {
		t.Fatal("a/c missing")
	}
}

func TestLRUDelete(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Delete(7) // absent: no-op
	l.Put(1, 1)
	l.Put(2, 2)
	l.Delete(1)
	if l.Len() != 1 || l.Contains(1) {
		t.Fatal("delete failed")
	}
	// List stays consistent after head/tail deletions.
	l.Delete(2)
	if l.Len() != 0 {
		t.Fatal("not empty")
	}
	l.Put(3, 3)
	if !l.Contains(3) {
		t.Fatal("reuse after emptying failed")
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	l := NewLRU[int, int](0)
	l.Put(1, 1)
	l.Put(2, 2)
	if l.Len() != 1 || !l.Contains(2) {
		t.Fatal("capacity floor of 1 not enforced")
	}
}
