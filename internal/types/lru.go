package types

// LRU is a small bounded map with least-recently-used eviction. It is the
// building block of the chain-reference caches (PR 4): a receiver keeps,
// per peer, the digest chains that peer has defined, and a sender keeps,
// per destination, the chain digests it has already transmitted — both
// bounded, both evicting the entry that has gone longest without use, so
// the two sides age their views in lockstep when they observe the same
// reference stream.
//
// The zero value is not usable; construct with NewLRU. An LRU is NOT safe
// for concurrent use — callers guard it with whatever lock already guards
// the state it belongs to.
type LRU[K comparable, V any] struct {
	capacity int
	m        map[K]*lruNode[K, V]
	// head is the most recently used node, tail the least; nil when empty.
	head, tail *lruNode[K, V]
}

type lruNode[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruNode[K, V]
}

// NewLRU returns an empty cache holding at most capacity entries;
// capacity < 1 is raised to 1.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		m:        make(map[K]*lruNode[K, V], capacity),
	}
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int { return len(l.m) }

// Get returns the value cached under k and marks it most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	n, ok := l.m[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(n)
	return n.val, true
}

// Contains reports whether k is cached and marks it most recently used —
// the "touch" senders apply on every reference so sender and receiver age
// entries identically.
func (l *LRU[K, V]) Contains(k K) bool {
	_, ok := l.Get(k)
	return ok
}

// Put caches v under k (replacing any previous value), marks it most
// recently used, and evicts the least recently used entry if the cache is
// over capacity.
func (l *LRU[K, V]) Put(k K, v V) {
	if n, ok := l.m[k]; ok {
		n.val = v
		l.moveToFront(n)
		return
	}
	n := &lruNode[K, V]{key: k, val: v}
	l.m[k] = n
	l.pushFront(n)
	if len(l.m) > l.capacity {
		oldest := l.tail
		l.unlink(oldest)
		delete(l.m, oldest.key)
	}
}

// Delete removes k from the cache, if present.
func (l *LRU[K, V]) Delete(k K) {
	n, ok := l.m[k]
	if !ok {
		return
	}
	l.unlink(n)
	delete(l.m, n.key)
}

func (l *LRU[K, V]) pushFront(n *lruNode[K, V]) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU[K, V]) unlink(n *lruNode[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU[K, V]) moveToFront(n *lruNode[K, V]) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}
