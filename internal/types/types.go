// Package types defines the fundamental value types of the Astro payment
// system: client and replica identities, amounts, sequence numbers, and the
// payment record itself (the unit stored in exclusive logs).
//
// All types are plain values with deterministic binary encodings so that
// digests computed over them are stable across replicas.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// ClientID identifies a client (the owner of one exclusive log).
// Client identities are public; the mapping from client to representative
// replica is derived from them deterministically.
type ClientID uint64

// ReplicaID identifies a replica participating in the replication layer.
type ReplicaID uint32

// Amount is a non-negative quantity of funds. Astro does not support
// negative balances, so an unsigned integer is the natural representation.
type Amount uint64

// Seq is a client-assigned sequence number ordering the payments within a
// single exclusive log. The first payment of a client has Seq 1.
type Seq uint64

// PaymentID is the identifier of a payment: the pair (spender, sequence
// number). The broadcast layer guarantees agreement per PaymentID — no two
// correct replicas deliver different payments with the same identifier.
type PaymentID struct {
	Spender ClientID
	Seq     Seq
}

// String implements fmt.Stringer.
func (id PaymentID) String() string {
	return fmt.Sprintf("(%d,%d)", id.Spender, id.Seq)
}

// Payment is one transfer of funds recorded in the spender's exclusive log.
type Payment struct {
	Spender     ClientID
	Seq         Seq
	Beneficiary ClientID
	Amount      Amount
}

// ID returns the payment's identifier (spender, seq).
func (p Payment) ID() PaymentID {
	return PaymentID{Spender: p.Spender, Seq: p.Seq}
}

// String implements fmt.Stringer.
func (p Payment) String() string {
	return fmt.Sprintf("pay{%d->%d $%d sn=%d}", p.Spender, p.Beneficiary, p.Amount, p.Seq)
}

// PaymentWireSize is the size in bytes of an encoded Payment.
const PaymentWireSize = 8 + 8 + 8 + 8

// AppendBinary appends the canonical encoding of p to dst and returns the
// extended slice.
func (p Payment) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Spender))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Seq))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Beneficiary))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Amount))
	return dst
}

// MarshalBinary returns the canonical encoding of p.
func (p Payment) MarshalBinary() ([]byte, error) {
	return p.AppendBinary(make([]byte, 0, PaymentWireSize)), nil
}

// UnmarshalBinary decodes p from data, which must be exactly
// PaymentWireSize bytes.
func (p *Payment) UnmarshalBinary(data []byte) error {
	if len(data) != PaymentWireSize {
		return fmt.Errorf("payment: want %d bytes, got %d", PaymentWireSize, len(data))
	}
	p.Spender = ClientID(binary.BigEndian.Uint64(data[0:8]))
	p.Seq = Seq(binary.BigEndian.Uint64(data[8:16]))
	p.Beneficiary = ClientID(binary.BigEndian.Uint64(data[16:24]))
	p.Amount = Amount(binary.BigEndian.Uint64(data[24:32]))
	return nil
}

// Digest is a SHA-256 hash identifying a message or payload.
type Digest [sha256.Size]byte

// String implements fmt.Stringer, printing a short hex prefix.
func (d Digest) String() string {
	return fmt.Sprintf("%x", d[:6])
}

// HashPayment returns the digest of the payment's canonical encoding.
func HashPayment(p Payment) Digest {
	return sha256.Sum256(p.AppendBinary(make([]byte, 0, PaymentWireSize)))
}

// HashBytes returns the SHA-256 digest of data.
func HashBytes(data []byte) Digest {
	return sha256.Sum256(data)
}

// QuorumSize returns the Byzantine quorum size 2f+1 for a system of
// n = 3f+1 replicas tolerating f faults.
func QuorumSize(f int) int { return 2*f + 1 }

// MaxFaults returns the largest f such that n >= 3f+1, i.e. the number of
// Byzantine replicas a system of n replicas tolerates.
func MaxFaults(n int) int {
	if n < 1 {
		return 0
	}
	return (n - 1) / 3
}
