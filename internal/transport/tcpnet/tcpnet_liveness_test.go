package tcpnet

// Liveness regression tests for the PR 4 transport fixes: the startup
// parking of pre-handler frames, dial/backoff outside the per-peer lock
// (concurrent senders during peer death and redial), write deadlines
// against stalled readers, learned-route supersession on reconnect, and
// clean Close with sends in flight. The whole file is exercised under
// -race by the Makefile's race target.

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/transport"
)

// TestTCPEarlyFramesParkedUntilHandler: frames arriving between New and
// SetHandler must not be dropped — they are parked and delivered, in
// order, once the handler is installed.
func TestTCPEarlyFramesParkedUntilHandler(t *testing.T) {
	a, b := pair(t)
	const n = 5
	for i := 0; i < n; i++ {
		if err := a.Send(2, []byte(fmt.Sprintf("early-%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Let the frames reach b's dispatch goroutine before any handler
	// exists (the pre-PR4 code dropped them here).
	time.Sleep(150 * time.Millisecond)

	ch := make(chan string, n)
	b.SetHandler(func(_ transport.NodeID, p []byte) { ch <- string(p) })
	for i := 0; i < n; i++ {
		select {
		case m := <-ch:
			if want := fmt.Sprintf("early-%d", i); m != want {
				t.Fatalf("parked frame %d = %q, want %q (order lost)", i, m, want)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("parked frame %d never delivered", i)
		}
	}
	// Later traffic flows behind the flushed backlog.
	if err := a.Send(2, []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if m != "late" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("post-handler frame lost")
	}
}

// TestTCPConcurrentSendDuringPeerDeath: when the peer dies, concurrent
// senders must all fail (or succeed) promptly and independently — the dial
// and redial backoff run outside the per-peer lock, and the dial is
// single-flight. Afterwards, a peer reborn on the same address is reached
// again.
func TestTCPConcurrentSendDuringPeerDeath(t *testing.T) {
	a, b := pair(t)
	addr := b.Addr().String()
	if err := a.Send(2, []byte("warm-up")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	const senders = 8
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Errors are expected while the peer is down; what must not
			// happen is senders serializing behind one another's dial
			// attempts and backoff sleeps.
			_ = a.Send(2, []byte(fmt.Sprintf("dead-%d", i)))
		}(i)
	}
	wg.Wait()
	// One write failure + one backoff + one failed redial bounds each
	// sender; serialized behind a shared lock this would multiply by the
	// sender count.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("concurrent sends to a dead peer took %v", elapsed)
	}

	// Rebirth on the same address: redial reaches the new process.
	b2, err := New(Config{Self: 2, Listen: addr, Peers: map[transport.NodeID]string{}})
	if err != nil {
		t.Fatalf("reborn endpoint: %v", err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	ch := make(chan string, 1)
	b2.SetHandler(func(_ transport.NodeID, p []byte) { ch <- string(p) })
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := a.Send(2, []byte("reborn")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send to reborn peer never succeeded")
		}
		time.Sleep(50 * time.Millisecond)
	}
	select {
	case m := <-ch:
		if m != "reborn" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("reborn peer never received")
	}
}

// TestTCPWriteDeadlineUnblocksStalledPeer: a peer that accepts the
// connection but never reads must not hold Send (and with it the per-peer
// lock) forever — the write deadline fails the sender.
func TestTCPWriteDeadlineUnblocksStalledPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { <-stop; _ = c.Close() }(conn) // never read
		}
	}()

	a, err := New(Config{
		Self:          1,
		Peers:         map[transport.NodeID]string{2: ln.Addr().String()},
		WriteTimeout:  200 * time.Millisecond,
		RedialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })

	// Pump more frames than the kernel can buffer (loopback blocks within
	// a few MiB). Without the write deadline, the first write that fills
	// the buffers would block Send — holding the per-peer lock — forever;
	// with it, every Send returns (an error, or success after the
	// deadline-triggered teardown and redial). The only failure mode is
	// the pump wedging.
	payload := make([]byte, 1<<20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			_ = a.Send(2, payload)
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Send wedged on a stalled peer despite the write deadline")
	}
}

// TestTCPLearnedRouteSupersession: a peer with no configured address is
// reachable through its inbound connection; when it reconnects (client
// process restart), the NEWEST connection wins, including while the old
// one is still open.
func TestTCPLearnedRouteSupersession(t *testing.T) {
	srv, err := New(Config{Self: 1, Listen: "127.0.0.1:0", Peers: map[transport.NodeID]string{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	srv.SetHandler(func(transport.NodeID, []byte) {})
	addr := srv.Addr().String()
	const clientID = transport.ClientNodeBase + 7

	newClient := func() (*Endpoint, chan string) {
		c, err := New(Config{Self: clientID, Peers: map[transport.NodeID]string{1: addr}})
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan string, 16)
		c.SetHandler(func(_ transport.NodeID, p []byte) { ch <- string(p) })
		return c, ch
	}

	c1, ch1 := newClient()
	t.Cleanup(func() { _ = c1.Close() })
	if err := c1.Send(1, []byte("hello-1")); err != nil {
		t.Fatal(err)
	}
	waitReply := func(ch chan string, want string) bool {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := srv.Send(clientID, []byte(want)); err == nil {
				select {
				case m := <-ch:
					if m == want {
						return true
					}
				case <-time.After(100 * time.Millisecond):
				}
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !waitReply(ch1, "reply-1") {
		t.Fatal("first client never reachable via learned route")
	}

	// Second client, same identity, c1 still open: the newer connection
	// supersedes the route.
	c2, ch2 := newClient()
	t.Cleanup(func() { _ = c2.Close() })
	if err := c2.Send(1, []byte("hello-2")); err != nil {
		t.Fatal(err)
	}
	if !waitReply(ch2, "reply-2") {
		t.Fatal("reconnected client never took over the learned route")
	}

	// After the superseded client dies, the route must stay with c2 (the
	// eviction of c1's connection must not clear c2's newer one).
	_ = c1.Close()
	time.Sleep(100 * time.Millisecond)
	if !waitReply(ch2, "reply-3") {
		t.Fatal("route lost after the superseded connection closed")
	}
}

// TestTCPCloseWithInflightSends: Close must return promptly and without
// races while senders are mid-Send, and sends after Close must error.
func TestTCPCloseWithInflightSends(t *testing.T) {
	a, b := pair(t)
	b.SetHandler(func(transport.NodeID, []byte) {})
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				_ = a.Send(2, []byte("inflight"))
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		_ = a.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged behind in-flight sends")
	}
	stopped.Store(true)
	wg.Wait()
	if err := a.Send(2, []byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// TestTCPParkedFramesBoundedPerPeer: while no handler is installed, one
// peer flooding the endpoint must not evict (or starve) another peer's
// parked frames — the per-peer cap sheds the flooder's excess and the
// quiet peer's traffic is still delivered when the handler lands.
func TestTCPParkedFramesBoundedPerPeer(t *testing.T) {
	c, err := New(Config{Self: 3, Listen: "127.0.0.1:0", Peers: map[transport.NodeID]string{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	a, err := New(Config{Self: 1, Peers: map[transport.NodeID]string{3: c.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := New(Config{Self: 2, Peers: map[transport.NodeID]string{3: c.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	// Flood from a: well past the per-peer cap.
	for i := 0; i < maxParkedPerPeer+512; i++ {
		if err := a.Send(3, []byte("flood")); err != nil {
			t.Fatalf("flood send: %v", err)
		}
	}
	// One honest frame from b, after the flood.
	if err := b.Send(3, []byte("honest")); err != nil {
		t.Fatal(err)
	}
	// Let everything reach c's dispatch goroutine pre-handler.
	deadline := time.Now().Add(5 * time.Second)
	for c.ParkDrops() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.ParkDrops() == 0 {
		t.Fatal("per-peer parking cap never engaged")
	}

	got := make(chan string, maxParked+1024)
	c.SetHandler(func(_ transport.NodeID, p []byte) { got <- string(p) })
	var floods int
	for {
		select {
		case m := <-got:
			if m == "honest" {
				if floods > maxParkedPerPeer {
					t.Fatalf("flooder parked %d frames, cap is %d", floods, maxParkedPerPeer)
				}
				return // honest frame survived the flood
			}
			floods++
		case <-time.After(5 * time.Second):
			t.Fatalf("honest frame evicted by flooder (saw %d flood frames, %d drops)",
				floods, c.ParkDrops())
		}
	}
}

// TestTCPRedialPauseJittered: the redial backoff must be spread over
// [0.5, 1.5) × RedialBackoff, not a fixed value — synchronized redials
// after a partition heal are the thundering herd this prevents.
func TestTCPRedialPauseJittered(t *testing.T) {
	e, err := New(Config{Self: 9, RedialBackoff: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	seen := make(map[time.Duration]bool)
	lo, hi := 50*time.Millisecond, 150*time.Millisecond
	for i := 0; i < 64; i++ {
		d := e.redialPause()
		if d < lo || d >= hi {
			t.Fatalf("pause %v outside [%v, %v)", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 32 {
		t.Fatalf("pauses not jittered: only %d distinct values in 64 draws", len(seen))
	}
}
