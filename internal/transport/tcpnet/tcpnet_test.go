package tcpnet

import (
	"fmt"
	"testing"
	"time"

	"astro/internal/transport"
)

// pair starts two endpoints listening on loopback and wires their peer maps.
func pair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := New(Config{Self: 1, Listen: "127.0.0.1:0", Peers: map[transport.NodeID]string{}})
	if err != nil {
		t.Fatalf("endpoint a: %v", err)
	}
	b, err := New(Config{Self: 2, Listen: "127.0.0.1:0", Peers: map[transport.NodeID]string{}})
	if err != nil {
		t.Fatalf("endpoint b: %v", err)
	}
	a.cfg.Peers[2] = b.Addr().String()
	b.cfg.Peers[1] = a.Addr().String()
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func recvOne(t *testing.T, ep *Endpoint) (transport.NodeID, []byte) {
	t.Helper()
	type msg struct {
		from transport.NodeID
		p    []byte
	}
	ch := make(chan msg, 16)
	ep.SetHandler(func(from transport.NodeID, p []byte) {
		ch <- msg{from, p}
	})
	select {
	case m := <-ch:
		return m.from, m.p
	case <-time.After(3 * time.Second):
		t.Fatal("timeout waiting for message")
		return 0, nil
	}
}

func TestTCPSendReceive(t *testing.T) {
	a, b := pair(t)
	ch := make(chan []byte, 1)
	b.SetHandler(func(from transport.NodeID, p []byte) {
		if from != 1 {
			t.Errorf("from = %d", from)
		}
		ch <- p
	})
	if err := a.Send(2, []byte("over tcp")); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case p := <-ch:
		if string(p) != "over tcp" {
			t.Errorf("payload = %q", p)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := pair(t)
	chA := make(chan string, 1)
	chB := make(chan string, 1)
	a.SetHandler(func(_ transport.NodeID, p []byte) { chA <- string(p) })
	b.SetHandler(func(_ transport.NodeID, p []byte) { chB <- string(p) })

	if err := a.Send(2, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-chB:
		if m != "ping" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout ping")
	}
	if err := b.Send(1, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-chA:
		if m != "pong" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout pong")
	}
}

func TestTCPSelfSend(t *testing.T) {
	a, _ := pair(t)
	from, p := func() (transport.NodeID, []byte) {
		ch := make(chan struct{})
		var gotFrom transport.NodeID
		var gotP []byte
		a.SetHandler(func(f transport.NodeID, pl []byte) {
			gotFrom, gotP = f, pl
			close(ch)
		})
		if err := a.Send(1, []byte("loop")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatal("timeout")
		}
		return gotFrom, gotP
	}()
	if from != 1 || string(p) != "loop" {
		t.Errorf("self send from=%d p=%q", from, p)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := pair(t)
	if err := a.Send(42, []byte("x")); err == nil {
		t.Error("send to unknown peer: want error")
	}
}

func TestTCPManyMessages(t *testing.T) {
	a, b := pair(t)
	const n = 200
	ch := make(chan string, n)
	b.SetHandler(func(_ transport.NodeID, p []byte) { ch <- string(p) })
	for i := 0; i < n; i++ {
		if err := a.Send(2, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	seen := make(map[string]bool, n)
	deadline := time.After(5 * time.Second)
	for len(seen) < n {
		select {
		case m := <-ch:
			seen[m] = true
		case <-deadline:
			t.Fatalf("received %d/%d", len(seen), n)
		}
	}
	// TCP preserves order on one connection; spot-check monotonicity was
	// implicitly covered by map completeness (all made it through).
}

func TestTCPClosedSend(t *testing.T) {
	a, _ := pair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err == nil {
		t.Error("send after close: want error")
	}
}

func TestTCPFrameOrdering(t *testing.T) {
	a, b := pair(t)
	const n = 50
	ch := make(chan string, n)
	b.SetHandler(func(_ transport.NodeID, p []byte) { ch <- string(p) })
	for i := 0; i < n; i++ {
		if err := a.Send(2, []byte(fmt.Sprintf("%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	prev := -1
	for i := 0; i < n; i++ {
		select {
		case m := <-ch:
			var v int
			fmt.Sscanf(m, "%d", &v)
			if v <= prev {
				t.Fatalf("out of order: %d after %d", v, prev)
			}
			prev = v
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
	_ = recvOne // silence unused helper if build tags change
}
