// Package tcpnet implements transport.Endpoint over real TCP connections
// for multi-process deployments of Astro (cmd/astro-node and
// cmd/astro-client). Frames are length-prefixed; each frame carries the
// sender's NodeID so a single inbound connection can relay for any peer.
//
// Outbound connections are established lazily and re-dialed with backoff on
// failure. Like memnet, inbound messages are delivered from a single
// reader goroutine per endpoint; protocols layered through transport.Mux
// then fan out to one dispatch goroutine per channel (see the Mux
// concurrency contract).
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/transport"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("tcpnet: endpoint closed")

// ErrUnknownPeer is returned when sending to a NodeID with no configured
// address.
var ErrUnknownPeer = errors.New("tcpnet: unknown peer")

// maxFrame bounds inbound frame size (16 MiB, matching wire.MaxChunk).
const maxFrame = 16 << 20

// Config describes one endpoint of a TCP deployment.
type Config struct {
	// Self is this node's identity.
	Self transport.NodeID
	// Listen is the local address to accept connections on, e.g.
	// ":7001". Empty means the endpoint is client-only (dial out, receive
	// replies over its outbound connections).
	Listen string
	// Peers maps node identities to dialable addresses.
	Peers map[transport.NodeID]string
	// DialTimeout bounds each connection attempt. Zero means 3s.
	DialTimeout time.Duration
	// RedialBackoff is the base pause before re-dialing a failed peer.
	// The actual pause is jittered uniformly in [0.5, 1.5) × this value,
	// so the senders cut off by a partition don't redial the healed peer
	// in one synchronized thundering herd. Zero means 250ms.
	RedialBackoff time.Duration
	// WriteTimeout bounds each frame write, so a peer that stops reading
	// (dead process behind a live TCP window, full kernel buffers) fails
	// the sender instead of blocking it forever. Zero means 10s.
	WriteTimeout time.Duration
}

// Endpoint is a TCP-backed transport endpoint.
type Endpoint struct {
	cfg      Config
	listener net.Listener

	handler atomic.Pointer[transport.Handler]
	inbox   chan inMsg
	// handlerSet wakes the dispatch goroutine when SetHandler installs a
	// handler, so frames parked during the New -> SetHandler window are
	// delivered promptly even if nothing else arrives.
	handlerSet chan struct{}
	done       chan struct{}
	closed     atomic.Bool

	// jitter seeds the redial-backoff spread; parkDrops counts frames shed
	// by the pre-handler parking bounds (observable in tests and ops).
	jitter    atomic.Uint64
	parkDrops atomic.Uint64

	mu    sync.Mutex
	conns map[transport.NodeID]*peerConn
	open  map[net.Conn]struct{} // every live conn, for Close

	wg sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

type inMsg struct {
	from    transport.NodeID
	payload []byte
}

// peerConn is the per-peer outbound state. mu serializes frame writes and
// guards the fields; it is NEVER held across a dial, a backoff sleep, or a
// (deadline-bounded) write's retry path — one sender stuck establishing a
// connection must not wedge every other goroutine sending to the peer.
// Dialing is single-flight: the first sender that finds the conn down
// dials while the others wait on dialDone, outside the lock.
type peerConn struct {
	mu       sync.Mutex
	conn     net.Conn
	dialing  bool
	dialDone chan struct{}
	dialErr  error
}

// New creates an endpoint and, if cfg.Listen is non-empty, starts
// accepting connections.
func New(cfg Config) (*Endpoint, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 250 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	e := &Endpoint{
		cfg:        cfg,
		inbox:      make(chan inMsg, 1<<12),
		handlerSet: make(chan struct{}, 1),
		done:       make(chan struct{}),
		conns:      make(map[transport.NodeID]*peerConn),
		open:       make(map[net.Conn]struct{}),
	}
	e.jitter.Store(uint64(time.Now().UnixNano()) ^ uint64(cfg.Self)<<32)
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcpnet listen %s: %w", cfg.Listen, err)
		}
		e.listener = ln
		e.wg.Add(1)
		go e.acceptLoop()
	}
	e.wg.Add(1)
	go e.dispatch()
	return e, nil
}

// Addr returns the bound listen address (useful with ":0").
func (e *Endpoint) Addr() net.Addr {
	if e.listener == nil {
		return nil
	}
	return e.listener.Addr()
}

// ID implements transport.Endpoint.
func (e *Endpoint) ID() transport.NodeID { return e.cfg.Self }

// SetHandler implements transport.Endpoint. Frames that arrived before the
// handler was installed are parked by the dispatch goroutine and delivered
// — in arrival order, ahead of newer traffic — once it is.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.handler.Store(&h)
	select {
	case e.handlerSet <- struct{}{}:
	default: // a wake-up is already pending
	}
}

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.done)
	if e.listener != nil {
		_ = e.listener.Close()
	}
	e.mu.Lock()
	for c := range e.open {
		_ = c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}

// track registers a live connection for Close; it returns false when the
// endpoint is already closed (the caller must close the conn itself).
func (e *Endpoint) track(c net.Conn) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return false
	}
	e.open[c] = struct{}{}
	return true
}

func (e *Endpoint) untrack(c net.Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.open, c)
}

// Bounds on the frames buffered while no handler is installed (the
// New -> SetHandler startup window). Beyond them, newest frames are
// dropped — the pre-PR4 behavior, now reachable only if a handler is never
// set. The per-peer and byte caps keep one hostile (or merely chatty) peer
// from consuming the whole parking lot before the handler lands: without
// them, a client blasting frames at a booting replica could evict every
// honest peer's startup traffic and pin maxParked × maxFrame bytes.
const (
	maxParked        = 1 << 14 // total parked frames
	maxParkedPerPeer = 1 << 10 // parked frames from any single peer
	maxParkedBytes   = 8 << 20 // total parked payload bytes
)

// ParkDrops returns the number of pre-handler frames shed by the parking
// bounds since the endpoint started.
func (e *Endpoint) ParkDrops() uint64 { return e.parkDrops.Load() }

func (e *Endpoint) dispatch() {
	defer e.wg.Done()
	var parked []inMsg
	var parkedBytes int
	perPeer := make(map[transport.NodeID]int)
	for {
		var m inMsg
		var have bool
		select {
		case <-e.done:
			return
		case <-e.handlerSet:
		case m = <-e.inbox:
			have = true
		}
		h := e.handler.Load()
		if h == nil {
			// Startup race (frames arriving between New and SetHandler):
			// park instead of dropping; the handlerSet wake-up flushes.
			if !have {
				continue
			}
			if len(parked) >= maxParked ||
				parkedBytes+len(m.payload) > maxParkedBytes ||
				perPeer[m.from] >= maxParkedPerPeer {
				e.parkDrops.Add(1)
				continue
			}
			parked = append(parked, m)
			parkedBytes += len(m.payload)
			perPeer[m.from]++
			continue
		}
		for _, p := range parked {
			(*h)(p.from, p.payload)
		}
		if len(parked) > 0 {
			parked, parkedBytes = nil, 0
			perPeer = make(map[transport.NodeID]int)
		}
		if have {
			(*h)(m.from, m.payload)
		}
	}
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if !e.track(conn) {
			_ = conn.Close()
			return
		}
		e.wg.Add(1)
		go e.readLoop(conn, true)
	}
}

// frame layout: [4B big-endian total length][4B from][payload]
// ownConn: whether this loop owns the connection lifecycle (inbound
// accepted conns) or shares it with Send (outbound dialed conns).
func (e *Endpoint) readLoop(conn net.Conn, ownConn bool) {
	defer e.wg.Done()
	defer e.untrack(conn)
	defer e.evictRoutes(conn)
	if ownConn {
		defer conn.Close()
	}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		total := binary.BigEndian.Uint32(hdr[0:4])
		if total < 4 || total > maxFrame {
			return
		}
		from := transport.NodeID(binary.BigEndian.Uint32(hdr[4:8]))
		payload := make([]byte, total-4)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		// Learn a return route: replies to a peer with no configured
		// address (e.g. a client that dialed in) reuse its connection.
		e.learnRoute(from, conn)
		select {
		case e.inbox <- inMsg{from: from, payload: payload}:
		case <-e.done:
			return
		}
	}
}

// Send implements transport.Endpoint. Self-sends loop back through the
// inbox without touching the network.
func (e *Endpoint) Send(to transport.NodeID, payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to == e.cfg.Self {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		select {
		case e.inbox <- inMsg{from: to, payload: buf}:
			return nil
		case <-e.done:
			return ErrClosed
		}
	}

	pc := e.peer(to)
	if pc == nil {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}

	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(4+len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], uint32(e.cfg.Self))
	copy(frame[8:], payload)

	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			// Backoff before the redial — outside every lock, so other
			// senders to this peer (and Close) are never wedged behind it.
			select {
			case <-time.After(e.redialPause()):
			case <-e.done:
				return ErrClosed
			}
		}
		// A connection replaced between attach and the locked write (a
		// concurrent sender redialed, or a learned route reconnected) is
		// not a failure — a live conn exists — so re-attach immediately
		// without spending the attempt or the backoff; the bound only
		// stops a pathological churn loop.
		for replaced := 0; replaced < 4; replaced++ {
			conn, err := e.attach(pc, to)
			if err != nil {
				lastErr = err
				break
			}
			pc.mu.Lock()
			if pc.conn != conn {
				pc.mu.Unlock()
				lastErr = fmt.Errorf("tcpnet send to %d: connection churn", to)
				continue
			}
			// The deadline bounds how long a stalled peer (live TCP
			// window, dead reader) can hold pc.mu through this write.
			_ = conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
			_, werr := conn.Write(frame)
			if werr == nil {
				pc.mu.Unlock()
				return nil
			}
			pc.conn = nil
			pc.mu.Unlock()
			_ = conn.Close()
			lastErr = werr
			break
		}
	}
	return fmt.Errorf("tcpnet send to %d: %w", to, lastErr)
}

// redialPause draws the jittered backoff before a redial: uniform in
// [0.5, 1.5) × RedialBackoff from a per-endpoint splitmix64 stream. When a
// partition heals or a peer restarts, every blocked sender wants to redial
// at once; the spread staggers them instead of a synchronized herd (the
// same reason the sim transport jitters its latency draws).
func (e *Endpoint) redialPause() time.Duration {
	x := e.jitter.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return time.Duration((0.5 + u) * float64(e.cfg.RedialBackoff))
}

// attach returns a live connection to the peer, dialing if necessary. The
// dial runs outside pc.mu and is single-flight: concurrent senders that
// find the connection down wait for the one in-flight dial instead of
// stacking up behind a lock (the pre-PR4 bug: pc.mu was held across
// net.DialTimeout and the backoff sleep, wedging every sender to the peer
// — including Mux dispatch goroutines — behind one failed dial).
func (e *Endpoint) attach(pc *peerConn, to transport.NodeID) (net.Conn, error) {
	for {
		pc.mu.Lock()
		if pc.conn != nil {
			conn := pc.conn
			pc.mu.Unlock()
			return conn, nil
		}
		if e.closed.Load() {
			pc.mu.Unlock()
			return nil, ErrClosed
		}
		if !pc.dialing {
			addr, known := e.cfg.Peers[to]
			if !known {
				// A learned route (inbound-only peer) whose connection
				// died: nothing to dial until the peer reconnects.
				pc.mu.Unlock()
				return nil, fmt.Errorf("%w: %d (learned route lost)", ErrUnknownPeer, to)
			}
			pc.dialing = true
			done := make(chan struct{})
			pc.dialDone = done
			pc.mu.Unlock()

			conn, err := net.DialTimeout("tcp", addr, e.cfg.DialTimeout)
			if err != nil {
				err = fmt.Errorf("tcpnet dial %d@%s: %w", to, addr, err)
			} else if !e.track(conn) {
				_ = conn.Close()
				conn, err = nil, ErrClosed
			}

			pc.mu.Lock()
			pc.dialing = false
			pc.dialDone = nil
			pc.dialErr = err
			if err == nil {
				pc.conn = conn
				e.wg.Add(1)
				go e.readLoop(conn, false) // replies may arrive on this conn
			}
			pc.mu.Unlock()
			close(done)
			if err != nil {
				return nil, err
			}
			return conn, nil
		}
		// Another sender is dialing: wait for its verdict off the lock.
		done := pc.dialDone
		pc.mu.Unlock()
		select {
		case <-done:
		case <-e.done:
			return nil, ErrClosed
		}
		pc.mu.Lock()
		if pc.conn == nil && pc.dialErr != nil {
			err := pc.dialErr
			pc.mu.Unlock()
			return nil, err
		}
		pc.mu.Unlock()
		// Either the dial succeeded (fast path on re-entry) or the state
		// already moved on (connection written to and torn down); retry.
	}
}

func (e *Endpoint) peer(to transport.NodeID) *peerConn {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pc, ok := e.conns[to]; ok {
		return pc
	}
	if _, known := e.cfg.Peers[to]; !known {
		return nil
	}
	pc := &peerConn{}
	e.conns[to] = pc
	return pc
}

// learnRoute records an inbound connection as the way to reach a peer
// without a configured address. The most recent connection wins: a peer
// that reconnects (e.g. a client process restarting) supersedes its dead
// predecessor.
func (e *Endpoint) learnRoute(from transport.NodeID, conn net.Conn) {
	if _, configured := e.cfg.Peers[from]; configured {
		return
	}
	e.mu.Lock()
	pc, ok := e.conns[from]
	if !ok {
		pc = &peerConn{}
		e.conns[from] = pc
	}
	e.mu.Unlock()
	pc.mu.Lock()
	pc.conn = conn
	pc.mu.Unlock()
}

// evictRoutes clears learned routes that point at a now-closed connection.
func (e *Endpoint) evictRoutes(conn net.Conn) {
	e.mu.Lock()
	var pcs []*peerConn
	for id, pc := range e.conns {
		if _, configured := e.cfg.Peers[id]; !configured {
			pcs = append(pcs, pc)
		}
	}
	e.mu.Unlock()
	for _, pc := range pcs {
		pc.mu.Lock()
		if pc.conn == conn {
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
}
