package transport_test

// Dispatch-throughput benchmarks for the Mux. The workload is
// mixed-channel traffic — four protocol channels interleaved, each
// handler doing a fixed slice of CPU work standing in for payload decode
// and state-machine execution. "serial" is the pre-sharding baseline (one
// shared flow for the whole endpoint, via WithSerialDispatch); "sharded"
// is the default — one lane-affine flow per channel on the sched
// runtime. On a multi-core host sharded approaches min(channels, lanes)×
// the baseline; on a single core the two are at parity (the sharded path
// adds only a queue hop).

import (
	"crypto/sha256"
	"sync"
	"testing"

	"astro/internal/transport"
	"astro/internal/transport/memnet"
)

func benchMuxDispatch(b *testing.B, opts ...transport.MuxOption) {
	net := memnet.New()
	defer net.Close()
	recv := transport.NewMux(net.Node(1), opts...)
	defer recv.Close()

	channels := []transport.Channel{
		transport.ChanBRB, transport.ChanPayment, transport.ChanCredit, transport.ChanConsensus,
	}
	var wg sync.WaitGroup
	for _, ch := range channels {
		recv.Register(ch, func(_ transport.NodeID, p []byte) {
			// Fixed per-message CPU work: hash the payload, as a stand-in
			// for decode + verify-completion handling.
			_ = sha256.Sum256(p)
			wg.Done()
		})
	}
	sender := transport.NewMux(net.Node(2))
	defer sender.Close()

	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	wg.Add(b.N)
	for i := 0; i < b.N; i++ {
		if err := sender.Send(1, channels[i%len(channels)], payload); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

func BenchmarkMuxDispatchSerial(b *testing.B) {
	benchMuxDispatch(b, transport.WithSerialDispatch())
}

func BenchmarkMuxDispatchSharded(b *testing.B) {
	benchMuxDispatch(b)
}
