package transport_test

// Tests for the sharded Mux dispatcher: per-channel FIFO under concurrent
// cross-channel load, elimination of cross-channel head-of-line blocking,
// SerializeWith pairing (validated by the race detector), bounded-queue
// backpressure without message loss, and clean Close with in-flight
// messages. Run with -race.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/transport/memnet"
)

// TestMuxShardedPerChannelFIFO hammers three channels from concurrent
// senders and asserts every channel observes its own messages in send
// order, even though channels dispatch concurrently.
func TestMuxShardedPerChannelFIFO(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	recv := transport.NewMux(net.Node(1))
	defer recv.Close()

	channels := []transport.Channel{transport.ChanBRB, transport.ChanPayment, transport.ChanCredit}
	const perChan = 2000

	type rec struct {
		mu   sync.Mutex
		seqs []uint64
	}
	got := make(map[transport.Channel]*rec)
	var done sync.WaitGroup
	done.Add(len(channels) * perChan)
	for _, ch := range channels {
		r := &rec{}
		got[ch] = r
		recv.Register(ch, func(_ transport.NodeID, p []byte) {
			r.mu.Lock()
			r.seqs = append(r.seqs, be64(p))
			r.mu.Unlock()
			done.Done()
		})
	}
	if n := recv.DispatchGoroutines(); n != len(channels) {
		t.Fatalf("DispatchGoroutines = %d, want %d (one per channel)", n, len(channels))
	}

	// One sender endpoint per channel: each endpoint's reader delivers its
	// own channel's messages in order, and the three compete for the
	// receiving mux concurrently.
	var sendWG sync.WaitGroup
	for i, ch := range channels {
		sender := transport.NewMux(net.Node(transport.NodeID(10 + i)))
		defer sender.Close()
		sendWG.Add(1)
		go func(m *transport.Mux, ch transport.Channel) {
			defer sendWG.Done()
			for s := uint64(0); s < perChan; s++ {
				var buf [8]byte
				put64(buf[:], s)
				if err := m.Send(1, ch, buf[:]); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(sender, ch)
	}
	sendWG.Wait()
	if !waitGroupTimeout(&done, 10*time.Second) {
		t.Fatal("timed out waiting for deliveries")
	}
	for _, ch := range channels {
		r := got[ch]
		r.mu.Lock()
		if len(r.seqs) != perChan {
			t.Fatalf("chan %d: got %d messages, want %d", ch, len(r.seqs), perChan)
		}
		for i, s := range r.seqs {
			if s != uint64(i) {
				t.Fatalf("chan %d: position %d holds seq %d — FIFO violated", ch, i, s)
			}
		}
		r.mu.Unlock()
	}
}

// TestMuxShardedNoHeadOfLineBlocking wedges one channel's handler and
// asserts another channel keeps delivering — the property the sharding
// exists for.
func TestMuxShardedNoHeadOfLineBlocking(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	a := transport.NewMux(net.Node(1))
	b := transport.NewMux(net.Node(2))
	defer a.Close()
	defer b.Close()

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	b.Register(transport.ChanBRB, func(transport.NodeID, []byte) {
		entered <- struct{}{}
		<-gate // simulate a handler stalled on expensive verification
	})
	pay := make(chan struct{}, 16)
	b.Register(transport.ChanPayment, func(transport.NodeID, []byte) {
		pay <- struct{}{}
	})

	if err := a.Send(2, transport.ChanBRB, []byte("stall")); err != nil {
		t.Fatal(err)
	}
	<-entered // BRB handler is now wedged
	if err := a.Send(2, transport.ChanPayment, []byte("submit")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pay:
	case <-time.After(2 * time.Second):
		t.Fatal("payment delivery blocked behind a wedged BRB handler")
	}
	close(gate)
}

// TestMuxSerializeWithLocalTimer registers ChanLocal with
// SerializeWith(ChanPayment) and mutates shared state from both handlers
// WITHOUT locking; the race detector proves the serialization guarantee,
// and the counter proves no event was lost or doubled.
func TestMuxSerializeWithLocalTimer(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	m := transport.NewMux(net.Node(1))
	defer m.Close()
	peer := transport.NewMux(net.Node(2))
	defer peer.Close()

	const each = 1000
	var counter int // deliberately unsynchronized: serialization is the lock
	var done sync.WaitGroup
	done.Add(2 * each)
	m.Register(transport.ChanPayment, func(transport.NodeID, []byte) {
		counter++
		done.Done()
	})
	m.Register(transport.ChanLocal, func(transport.NodeID, []byte) {
		counter++
		done.Done()
	}, transport.SerializeWith(transport.ChanPayment))
	if n := m.DispatchGoroutines(); n != 1 {
		t.Fatalf("DispatchGoroutines = %d, want 1 (ChanLocal shares ChanPayment's)", n)
	}

	var send sync.WaitGroup
	send.Add(2)
	go func() {
		defer send.Done()
		for i := 0; i < each; i++ {
			if err := m.SendLocal([]byte{1}); err != nil {
				t.Errorf("SendLocal: %v", err)
				return
			}
		}
	}()
	go func() {
		defer send.Done()
		for i := 0; i < each; i++ {
			if err := peer.Send(1, transport.ChanPayment, []byte{2}); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	send.Wait()
	if !waitGroupTimeout(&done, 10*time.Second) {
		t.Fatal("timed out waiting for deliveries")
	}
	if counter != 2*each {
		t.Fatalf("counter = %d, want %d (lost or raced increments)", counter, 2*each)
	}
}

// TestMuxBoundedQueueBackpressure wedges a channel with a one-slot queue,
// pours messages in, and asserts none are lost: the queue blocks the
// endpoint reader (bounded memory) and everything drains after the wedge
// lifts.
func TestMuxBoundedQueueBackpressure(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	sender := transport.NewMux(net.Node(1))
	defer sender.Close()
	recv := transport.NewMux(net.Node(2), transport.WithQueueSize(1))
	defer recv.Close()

	const n = 64
	gate := make(chan struct{})
	var delivered atomic.Uint64
	var done sync.WaitGroup
	done.Add(n)
	recv.Register(transport.ChanBRB, func(transport.NodeID, []byte) {
		<-gate
		delivered.Add(1)
		done.Done()
	})
	for i := 0; i < n; i++ {
		if err := sender.Send(2, transport.ChanBRB, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Everything is wedged behind the first handler; nothing delivered.
	time.Sleep(50 * time.Millisecond)
	if got := delivered.Load(); got != 0 {
		t.Fatalf("delivered %d messages through a wedged one-slot queue", got)
	}
	close(gate)
	if !waitGroupTimeout(&done, 10*time.Second) {
		t.Fatalf("only %d/%d messages delivered — backpressure dropped messages", delivered.Load(), n)
	}
}

// TestMuxCloseWithInflight closes the mux while a handler is mid-message
// and the queues still hold undelivered messages: Close must wait for the
// in-flight handler, drop the rest, and leave everything race-free.
func TestMuxCloseWithInflight(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	sender := transport.NewMux(net.Node(1))
	defer sender.Close()
	recv := transport.NewMux(net.Node(2), transport.WithQueueSize(4))

	gate := make(chan struct{})
	entered := make(chan struct{}, 16) // roomy: the handler may run again for queued messages
	var inflightDone atomic.Bool
	recv.Register(transport.ChanBRB, func(_ transport.NodeID, p []byte) {
		entered <- struct{}{}
		<-gate
		inflightDone.Store(true)
	})
	for i := 0; i < 8; i++ {
		if err := sender.Send(2, transport.ChanBRB, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-entered // first message is in the handler; more sit queued

	closed := make(chan struct{})
	go func() {
		recv.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a handler was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate) // release the handler
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight handler finished")
	}
	if !inflightDone.Load() {
		t.Fatal("Close returned before the in-flight handler completed")
	}
	// Post-close sends must not wedge or panic; the messages are dropped.
	if err := sender.Send(2, transport.ChanBRB, []byte("late")); err != nil {
		t.Fatal(err)
	}
	recv.Close() // idempotent
}

// TestMuxSerialDispatchBaseline checks the measured baseline mode: every
// channel shares one dispatch goroutine, restoring cross-channel
// head-of-line blocking (and the old whole-endpoint serialization).
func TestMuxSerialDispatchBaseline(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	a := transport.NewMux(net.Node(1))
	defer a.Close()
	b := transport.NewMux(net.Node(2), transport.WithSerialDispatch())
	defer b.Close()

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	b.Register(transport.ChanBRB, func(transport.NodeID, []byte) {
		entered <- struct{}{}
		<-gate
	})
	pay := make(chan struct{}, 1)
	b.Register(transport.ChanPayment, func(transport.NodeID, []byte) { pay <- struct{}{} })
	if n := b.DispatchGoroutines(); n != 1 {
		t.Fatalf("DispatchGoroutines = %d, want 1 in serial mode", n)
	}

	if err := a.Send(2, transport.ChanBRB, []byte("stall")); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := a.Send(2, transport.ChanPayment, []byte("submit")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pay:
		t.Fatal("serial mode delivered across a wedged channel — not serialized")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case <-pay:
	case <-time.After(2 * time.Second):
		t.Fatal("payment never delivered after the wedge lifted")
	}
}

// waitGroupTimeout waits for wg with a deadline.
func waitGroupTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

func be64(b []byte) uint64 {
	var v uint64
	for _, x := range b[:8] {
		v = v<<8 | uint64(x)
	}
	return v
}

func put64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
