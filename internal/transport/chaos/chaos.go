// Package chaos wraps any transport.Endpoint — memnet or tcpnet — with a
// seeded, schedule-driven network fault injector. Where memnet's built-in
// knobs model a *simulated* network's properties (latency distribution,
// bandwidth, crash-stop), chaos perturbs an already-working transport from
// the outside: probabilistic drop, duplication, frame corruption, reorder,
// asymmetric per-link delay, and named partitions, all switchable at
// runtime by a timed schedule.
//
// One Controller governs a whole deployment: every node's endpoint is
// wrapped with Controller.Wrap, and the controller resolves the effective
// Rule per (from, to) pair — a directed link override beats a per-source
// override beats the default. All random draws come from a single seeded
// splitmix64 stream, so a chaos run is reproducible given (seed, send
// sequence).
//
// Self-sends are never perturbed: protocols ride local timer events over
// self-addressed frames (see transport.Mux), and chaos models the network,
// not the node.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/transport"
)

// Rule describes the perturbations applied to frames on a link. All
// probabilities are in [0,1] and are evaluated independently per frame in
// the fixed order drop → corrupt → duplicate → delay; Reorder is an extra
// chance that a delayed frame is held one extra delay draw so a later
// frame can overtake it on a FIFO transport.
type Rule struct {
	Drop      float64 // probability the frame is silently dropped
	Corrupt   float64 // probability one byte of the frame is flipped
	Duplicate float64 // probability the frame is delivered twice
	Reorder   float64 // probability a delayed frame is held back further

	DelayMin time.Duration // uniform extra delay lower bound
	DelayMax time.Duration // uniform extra delay upper bound (0 = none)

	Block bool // drop everything on this link (hard partition)
	Pass  bool // explicit no-perturbation override (shields a link from broader rules)
}

func (r Rule) zero() bool {
	return r.Drop == 0 && r.Corrupt == 0 && r.Duplicate == 0 &&
		r.Reorder == 0 && r.DelayMax == 0 && !r.Block && !r.Pass
}

// Stats counts perturbations applied so far, for engagement probes in
// tests and the auditor's reports.
type Stats struct {
	Sent       uint64
	Dropped    uint64
	Corrupted  uint64
	Duplicated uint64
	Delayed    uint64
	Reordered  uint64
	Blocked    uint64
}

// Controller holds the chaos configuration for one deployment.
type Controller struct {
	prng atomic.Uint64

	sent      atomic.Uint64
	dropped   atomic.Uint64
	corrupted atomic.Uint64
	dupped    atomic.Uint64
	delayed   atomic.Uint64
	reordered atomic.Uint64
	blocked   atomic.Uint64

	mu     sync.RWMutex
	def    Rule
	nodes  map[transport.NodeID]Rule    // per-source overrides
	links  map[[2]transport.NodeID]Rule // directed [from,to] overrides
	groups map[transport.NodeID]int     // partition membership
}

// NewController creates a controller with no perturbations armed. The
// seed fixes every probabilistic draw the controller will make.
func NewController(seed uint64) *Controller {
	c := &Controller{
		nodes: make(map[transport.NodeID]Rule),
		links: make(map[[2]transport.NodeID]Rule),
	}
	c.prng.Store(seed ^ 0x9e3779b97f4a7c15)
	return c
}

// uniform returns the next draw in [0,1) from the seeded splitmix64
// stream (same generator as memnet's jitter stream).
func (c *Controller) uniform() float64 {
	x := c.prng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// SetDefault installs the rule applied to links with no more specific
// override.
func (c *Controller) SetDefault(r Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.def = r
}

// SetNodeRule overrides the rule for every frame leaving from. A zero
// Rule removes the override.
func (c *Controller) SetNodeRule(from transport.NodeID, r Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.zero() {
		delete(c.nodes, from)
		return
	}
	c.nodes[from] = r
}

// SetLinkRule overrides the rule for the directed link from → to —
// this is how asymmetric delay is expressed. A zero Rule removes the
// override.
func (c *Controller) SetLinkRule(from, to transport.NodeID, r Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := [2]transport.NodeID{from, to}
	if r.zero() {
		delete(c.links, k)
		return
	}
	c.links[k] = r
}

// Partition splits the listed nodes into isolated groups: frames between
// nodes of different groups are blocked. Unlisted nodes are unaffected.
// Replaces any previous partition.
func (c *Controller) Partition(groups ...[]transport.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups = make(map[transport.NodeID]int)
	for g, members := range groups {
		for _, id := range members {
			c.groups[id] = g
		}
	}
}

// Heal removes the current partition.
func (c *Controller) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups = nil
}

// Reset returns the controller to its no-perturbation state (default
// rule, overrides, and partition all cleared). Stats are preserved.
func (c *Controller) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.def = Rule{}
	c.nodes = make(map[transport.NodeID]Rule)
	c.links = make(map[[2]transport.NodeID]Rule)
	c.groups = nil
}

// Stats returns a snapshot of the perturbation counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Sent:       c.sent.Load(),
		Dropped:    c.dropped.Load(),
		Corrupted:  c.corrupted.Load(),
		Duplicated: c.dupped.Load(),
		Delayed:    c.delayed.Load(),
		Reordered:  c.reordered.Load(),
		Blocked:    c.blocked.Load(),
	}
}

// resolve returns the effective rule for a frame from → to plus whether a
// partition blocks the pair.
func (c *Controller) resolve(from, to transport.NodeID) (Rule, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	blocked := false
	if c.groups != nil {
		ga, oka := c.groups[from]
		gb, okb := c.groups[to]
		blocked = oka && okb && ga != gb
	}
	if r, ok := c.links[[2]transport.NodeID{from, to}]; ok {
		return r, blocked
	}
	if r, ok := c.nodes[from]; ok {
		return r, blocked
	}
	return c.def, blocked
}

// Phase is one step of a chaos schedule: at offset At from schedule
// start, Apply is invoked with the controller.
type Phase struct {
	At    time.Duration
	Apply func(*Controller)
}

// StartSchedule arms the phases against the controller and returns a stop
// function cancelling any phases that have not fired yet (already-applied
// phases are not rolled back — schedules end with an explicit healing
// phase when they want a clean exit).
func (c *Controller) StartSchedule(phases []Phase) (stop func()) {
	timers := make([]*time.Timer, 0, len(phases))
	for _, p := range phases {
		p := p
		timers = append(timers, time.AfterFunc(p.At, func() { p.Apply(c) }))
	}
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}

// Wrap interposes the controller on an endpoint's outbound path. The
// returned endpoint implements transport.Endpoint and is what protocols
// (via transport.Mux) should be handed. Inbound frames pass through
// untouched — perturbing each sender's outbound side covers every link
// once without double-counting.
func (c *Controller) Wrap(ep transport.Endpoint) transport.Endpoint {
	return &chaosEndpoint{ctl: c, inner: ep}
}

type chaosEndpoint struct {
	ctl   *Controller
	inner transport.Endpoint
}

var _ transport.Endpoint = (*chaosEndpoint)(nil)

func (e *chaosEndpoint) ID() transport.NodeID           { return e.inner.ID() }
func (e *chaosEndpoint) SetHandler(h transport.Handler) { e.inner.SetHandler(h) }
func (e *chaosEndpoint) Close() error                   { return e.inner.Close() }

func (e *chaosEndpoint) Send(to transport.NodeID, payload []byte) error {
	self := e.inner.ID()
	if to == self { // local timer events are off-limits to chaos
		return e.inner.Send(to, payload)
	}
	c := e.ctl
	c.sent.Add(1)
	rule, blocked := c.resolve(self, to)
	if blocked || rule.Block {
		c.blocked.Add(1)
		return nil // partitions look like packet loss, not errors
	}
	if rule.Pass || rule.zero() {
		return e.inner.Send(to, payload)
	}
	if rule.Drop > 0 && c.uniform() < rule.Drop {
		c.dropped.Add(1)
		return nil
	}

	buf := payload
	if rule.Corrupt > 0 && c.uniform() < rule.Corrupt {
		buf = make([]byte, len(payload))
		copy(buf, payload)
		if len(buf) > 0 {
			// Flip one byte at a seeded position. Flipping buf[0] mangles
			// the mux channel tag, which receivers silently discard —
			// also a legitimate corruption outcome.
			buf[int(c.uniform()*float64(len(buf)))] ^= 0xff
		}
		c.corrupted.Add(1)
	}

	dup := rule.Duplicate > 0 && c.uniform() < rule.Duplicate
	if dup {
		c.dupped.Add(1)
	}

	var delay time.Duration
	if rule.DelayMax > 0 {
		lo, hi := rule.DelayMin, rule.DelayMax
		if hi < lo {
			lo, hi = hi, lo
		}
		delay = lo + time.Duration(c.uniform()*float64(hi-lo))
		if rule.Reorder > 0 && c.uniform() < rule.Reorder {
			delay += lo + time.Duration(c.uniform()*float64(hi-lo))
			c.reordered.Add(1)
		}
	}
	if delay <= 0 {
		if err := e.inner.Send(to, buf); err != nil {
			return err
		}
		if dup {
			return e.inner.Send(to, buf)
		}
		return nil
	}

	c.delayed.Add(1)
	// The Endpoint contract lets callers reuse payload after Send returns,
	// so deferred delivery must hold a private copy.
	if len(buf) > 0 && &buf[0] == &payload[0] {
		buf = make([]byte, len(payload))
		copy(buf, payload)
	}
	time.AfterFunc(delay, func() {
		_ = e.inner.Send(to, buf)
		if dup {
			_ = e.inner.Send(to, buf)
		}
	})
	return nil
}
