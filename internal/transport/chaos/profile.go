// Flag-friendly chaos configuration: a textual mini-language for rules
// and timed schedules, shared by cmd/astro-node's -chaos/-chaos-schedule
// flags, the astro facade's ChaosProfile, and the multi-process e2e
// harness. Keeping the parser next to the Controller means every consumer
// speaks the same dialect and a schedule string pasted from a runbook
// behaves identically in-process and across real TCP nodes.
//
// Rule language (comma-separated tokens):
//
//	drop=0.03,corrupt=0.01,dup=0.02,reorder=0.05,delay=200us-2ms
//	block            // hard-drop everything governed by the rule
//	pass             // explicit no-perturbation shield
//
// Schedule language (semicolon-separated phases, each "offset:directives"):
//
//	300ms:part=0 1|2 3;1200ms:heal;1500ms:drop=0.05,delay=1ms-4ms;3s:clear
//
// where "part=" lists partition groups ('|'-separated, members
// space-separated node IDs), "heal" removes the partition, "clear" resets
// the controller to quiet, and any rule tokens replace the default rule.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"astro/internal/transport"
)

// Profile is a complete, serializable chaos configuration: the PRNG seed,
// the default rule applied to every link, and an optional timed schedule.
// It is the config-file / flag-level mirror of a live Controller.
type Profile struct {
	Seed     uint64
	Default  Rule
	Schedule []SchedulePhase
}

// Zero reports whether the profile arms no perturbations at all.
func (p Profile) Zero() bool {
	return p.Default.zero() && len(p.Schedule) == 0
}

// Start builds a Controller from the profile, installs the default rule,
// arms the schedule (if any), and returns the controller plus a stop
// function cancelling unfired phases.
func (p Profile) Start() (*Controller, func()) {
	c := NewController(p.Seed)
	if !p.Default.zero() {
		c.SetDefault(p.Default)
	}
	if len(p.Schedule) == 0 {
		return c, func() {}
	}
	return c, c.StartSchedule(CompileSchedule(p.Schedule))
}

// SchedulePhase is the parsed, serializable form of one schedule step.
// Exactly the actions listed are applied at offset At, in the order
// partition → heal → clear → rule.
type SchedulePhase struct {
	At     time.Duration
	Groups [][]transport.NodeID // non-nil: install this partition
	Heal   bool                 // remove the current partition
	Clear  bool                 // Controller.Reset()
	Rule   *Rule                // non-nil: replace the default rule
}

// CompileSchedule turns parsed phases into runnable Controller phases.
func CompileSchedule(steps []SchedulePhase) []Phase {
	out := make([]Phase, 0, len(steps))
	for _, s := range steps {
		s := s
		out = append(out, Phase{At: s.At, Apply: func(c *Controller) {
			if s.Groups != nil {
				c.Partition(s.Groups...)
			}
			if s.Heal {
				c.Heal()
			}
			if s.Clear {
				c.Reset()
			}
			if s.Rule != nil {
				c.SetDefault(*s.Rule)
			}
		}})
	}
	return out
}

// ParseRule parses the rule mini-language. An empty string is the zero
// (no-perturbation) rule.
func ParseRule(s string) (Rule, error) {
	var r Rule
	s = strings.TrimSpace(s)
	if s == "" {
		return r, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		switch key {
		case "block":
			r.Block = true
		case "pass":
			r.Pass = true
		case "drop", "corrupt", "dup", "duplicate", "reorder":
			if !hasVal {
				return Rule{}, fmt.Errorf("chaos: token %q needs =probability", tok)
			}
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("chaos: bad probability in %q (want [0,1])", tok)
			}
			switch key {
			case "drop":
				r.Drop = p
			case "corrupt":
				r.Corrupt = p
			case "dup", "duplicate":
				r.Duplicate = p
			case "reorder":
				r.Reorder = p
			}
		case "delay":
			if !hasVal {
				return Rule{}, fmt.Errorf("chaos: token %q needs =duration or =min-max", tok)
			}
			lo, hi, err := parseDelayBand(val)
			if err != nil {
				return Rule{}, err
			}
			r.DelayMin, r.DelayMax = lo, hi
		default:
			return Rule{}, fmt.Errorf("chaos: unknown rule token %q", tok)
		}
	}
	return r, nil
}

// parseDelayBand parses "2ms" (fixed) or "200us-2ms" (uniform band).
// Durations must be positive; time.ParseDuration's sign forms are
// rejected so '-' can separate the bounds unambiguously.
func parseDelayBand(v string) (lo, hi time.Duration, err error) {
	if strings.HasPrefix(v, "-") {
		return 0, 0, fmt.Errorf("chaos: negative delay %q", v)
	}
	if a, b, ok := strings.Cut(v, "-"); ok {
		lo, err = time.ParseDuration(a)
		if err == nil {
			hi, err = time.ParseDuration(b)
		}
		if err != nil || lo < 0 || hi < lo {
			return 0, 0, fmt.Errorf("chaos: bad delay band %q (want min-max)", v)
		}
		return lo, hi, nil
	}
	hi, err = time.ParseDuration(v)
	if err != nil || hi < 0 {
		return 0, 0, fmt.Errorf("chaos: bad delay %q", v)
	}
	return hi, hi, nil
}

// FormatRule renders r in ParseRule's language; ParseRule(FormatRule(r))
// round-trips. The zero rule renders as "".
func FormatRule(r Rule) string {
	var parts []string
	add := func(k string, p float64) {
		if p > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	add("drop", r.Drop)
	add("corrupt", r.Corrupt)
	add("dup", r.Duplicate)
	add("reorder", r.Reorder)
	if r.DelayMax > 0 {
		if r.DelayMin == r.DelayMax {
			parts = append(parts, "delay="+r.DelayMax.String())
		} else {
			parts = append(parts, "delay="+r.DelayMin.String()+"-"+r.DelayMax.String())
		}
	}
	if r.Block {
		parts = append(parts, "block")
	}
	if r.Pass {
		parts = append(parts, "pass")
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the schedule mini-language into phases sorted by
// offset. An empty string is an empty schedule.
func ParseSchedule(s string) ([]SchedulePhase, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []SchedulePhase
	for _, ph := range strings.Split(s, ";") {
		ph = strings.TrimSpace(ph)
		if ph == "" {
			continue
		}
		offStr, body, ok := strings.Cut(ph, ":")
		if !ok {
			return nil, fmt.Errorf("chaos: schedule phase %q missing offset: prefix", ph)
		}
		at, err := time.ParseDuration(strings.TrimSpace(offStr))
		if err != nil || at < 0 {
			return nil, fmt.Errorf("chaos: bad schedule offset %q", offStr)
		}
		step := SchedulePhase{At: at}
		var ruleToks []string
		for _, tok := range strings.Split(body, ",") {
			tok = strings.TrimSpace(tok)
			switch {
			case tok == "":
			case tok == "heal":
				step.Heal = true
			case tok == "clear":
				step.Clear = true
			case strings.HasPrefix(tok, "part="):
				groups, err := parseGroups(strings.TrimPrefix(tok, "part="))
				if err != nil {
					return nil, err
				}
				step.Groups = groups
			default:
				ruleToks = append(ruleToks, tok)
			}
		}
		if len(ruleToks) > 0 {
			r, err := ParseRule(strings.Join(ruleToks, ","))
			if err != nil {
				return nil, err
			}
			step.Rule = &r
		}
		if step.Groups == nil && !step.Heal && !step.Clear && step.Rule == nil {
			return nil, fmt.Errorf("chaos: schedule phase %q has no directives", ph)
		}
		out = append(out, step)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// parseGroups parses "0 1|2 3" into partition groups of node IDs.
func parseGroups(v string) ([][]transport.NodeID, error) {
	var groups [][]transport.NodeID
	for _, g := range strings.Split(v, "|") {
		var members []transport.NodeID
		for _, f := range strings.Fields(g) {
			id, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad node id %q in partition", f)
			}
			members = append(members, transport.NodeID(id))
		}
		if len(members) > 0 {
			groups = append(groups, members)
		}
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("chaos: partition %q needs at least two '|'-separated groups", v)
	}
	return groups, nil
}
