package chaos

import (
	"testing"
	"time"

	"astro/internal/transport"
)

func TestParseRuleRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"drop=0.03",
		"drop=0.03,corrupt=0.01,dup=0.02,reorder=0.05,delay=200µs-2ms",
		"delay=1ms",
		"block",
		"pass",
	}
	for _, s := range cases {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", s, err)
		}
		back, err := ParseRule(FormatRule(r))
		if err != nil {
			t.Fatalf("re-parse FormatRule(%q)=%q: %v", s, FormatRule(r), err)
		}
		if back != r {
			t.Fatalf("round trip %q: got %+v want %+v", s, back, r)
		}
	}
}

func TestParseRuleAliasesAndErrors(t *testing.T) {
	r, err := ParseRule("duplicate=0.5, drop=1")
	if err != nil || r.Duplicate != 0.5 || r.Drop != 1 {
		t.Fatalf("aliases: %+v err=%v", r, err)
	}
	if r, err := ParseRule("delay=5ms"); err != nil || r.DelayMin != 5*time.Millisecond || r.DelayMax != 5*time.Millisecond {
		t.Fatalf("fixed delay: %+v err=%v", r, err)
	}
	for _, bad := range []string{
		"drop=2", "drop=-0.1", "drop", "jitter=0.5",
		"delay=2ms-1ms", "delay=-1ms", "delay=zzz",
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Fatalf("ParseRule(%q) should fail", bad)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	steps, err := ParseSchedule("800ms:heal,drop=0.05; 300ms:part=0 1|2 3 ;2s:clear")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("got %d steps", len(steps))
	}
	// Sorted by offset.
	if steps[0].At != 300*time.Millisecond || steps[1].At != 800*time.Millisecond || steps[2].At != 2*time.Second {
		t.Fatalf("order: %+v", steps)
	}
	p := steps[0]
	if len(p.Groups) != 2 || len(p.Groups[0]) != 2 || p.Groups[1][0] != 2 {
		t.Fatalf("partition groups: %+v", p.Groups)
	}
	if !steps[1].Heal || steps[1].Rule == nil || steps[1].Rule.Drop != 0.05 {
		t.Fatalf("heal phase: %+v", steps[1])
	}
	if !steps[2].Clear {
		t.Fatalf("clear phase: %+v", steps[2])
	}

	for _, bad := range []string{
		"nocolon", "300ms:", "xx:heal", "1s:part=0 1", "1s:part=|", "1s:part=0 a|1",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) should fail", bad)
		}
	}
}

// The compiled schedule must drive a live controller: partition blocks
// cross-group sends, heal restores them, clear wipes the default rule.
func TestCompileScheduleDrivesController(t *testing.T) {
	steps, err := ParseSchedule("0s:part=1|2;0s:drop=1")
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(7)
	for _, ph := range CompileSchedule(steps) {
		ph.Apply(c)
	}
	if r, blocked := c.resolve(1, 2); !blocked || r.Drop != 1 {
		t.Fatalf("after schedule: rule=%+v blocked=%v", r, blocked)
	}
	heal, err := ParseSchedule("0s:heal;0s:clear")
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range CompileSchedule(heal) {
		ph.Apply(c)
	}
	if r, blocked := c.resolve(1, 2); blocked || !r.zero() {
		t.Fatalf("after heal+clear: rule=%+v blocked=%v", r, blocked)
	}
}

func TestProfileStart(t *testing.T) {
	p := Profile{
		Seed:    42,
		Default: Rule{Drop: 1},
		Schedule: []SchedulePhase{
			{At: time.Hour, Clear: true}, // must be cancellable
		},
	}
	if p.Zero() {
		t.Fatal("profile should not be zero")
	}
	c, stop := p.Start()
	defer stop()
	if r, _ := c.resolve(transport.NodeID(1), transport.NodeID(2)); r.Drop != 1 {
		t.Fatalf("default rule not installed: %+v", r)
	}
	if (Profile{}).Zero() == false {
		t.Fatal("empty profile should be zero")
	}
}
