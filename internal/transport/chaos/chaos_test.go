package chaos

import (
	"sync"
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/transport/memnet"
)

// collector records frames delivered to an endpoint.
type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) handler(_ transport.NodeID, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.frames = append(c.frames, buf)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func waitCount(t *testing.T, c *collector, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: got %d frames, want %d", c.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func pair(t *testing.T, ctl *Controller) (transport.Endpoint, *collector, *memnet.Network) {
	t.Helper()
	net := memnet.New()
	t.Cleanup(net.Close)
	a := ctl.Wrap(net.Node(1))
	b := net.Node(2)
	col := &collector{}
	b.SetHandler(col.handler)
	a.SetHandler(func(transport.NodeID, []byte) {})
	return a, col, net
}

// TestSeedDeterminism: the same seed and send sequence must yield the
// same perturbation decisions, counter for counter.
func TestSeedDeterminism(t *testing.T) {
	run := func(seed uint64) Stats {
		ctl := NewController(seed)
		ctl.SetDefault(Rule{Drop: 0.3, Corrupt: 0.2, Duplicate: 0.25})
		a, _, _ := pair(t, ctl)
		for i := 0; i < 400; i++ {
			if err := a.Send(2, []byte{1, byte(i), byte(i >> 8)}); err != nil {
				t.Fatal(err)
			}
		}
		return ctl.Stats()
	}
	s1, s2 := run(42), run(42)
	if s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	s3 := run(43)
	if s1 == s3 {
		t.Fatalf("different seeds produced identical stats %+v (suspicious)", s1)
	}
	if s1.Dropped == 0 || s1.Corrupted == 0 || s1.Duplicated == 0 {
		t.Fatalf("expected every perturbation to engage: %+v", s1)
	}
}

// TestDropAndDuplicate: delivered count = sent - dropped + duplicated.
func TestDropAndDuplicate(t *testing.T) {
	ctl := NewController(7)
	ctl.SetDefault(Rule{Drop: 0.5, Duplicate: 0.5})
	a, col, _ := pair(t, ctl)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(2, []byte{1, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := ctl.Stats()
	want := int(uint64(n) - st.Dropped + st.Duplicated)
	waitCount(t, col, want)
	time.Sleep(20 * time.Millisecond)
	if got := col.count(); got != want {
		t.Fatalf("delivered %d frames, want %d (stats %+v)", got, want, st)
	}
}

// TestCorruption flips exactly one byte per corrupted frame.
func TestCorruption(t *testing.T) {
	ctl := NewController(11)
	ctl.SetDefault(Rule{Corrupt: 1.0})
	a, col, _ := pair(t, ctl)
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := a.Send(2, orig); err != nil {
		t.Fatal(err)
	}
	waitCount(t, col, 1)
	got := col.frames[0]
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted frame differs in %d bytes, want exactly 1 (%x vs %x)", diff, got, orig)
	}
	if ctl.Stats().Corrupted != 1 {
		t.Fatalf("corrupted counter = %d, want 1", ctl.Stats().Corrupted)
	}
}

// TestPartitionAndHeal: cross-group frames are blocked until Heal.
func TestPartitionAndHeal(t *testing.T) {
	ctl := NewController(3)
	a, col, _ := pair(t, ctl)
	ctl.Partition([]transport.NodeID{1}, []transport.NodeID{2})
	for i := 0; i < 5; i++ {
		if err := a.Send(2, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := col.count(); got != 0 {
		t.Fatalf("partition leaked %d frames", got)
	}
	if ctl.Stats().Blocked != 5 {
		t.Fatalf("blocked counter = %d, want 5", ctl.Stats().Blocked)
	}
	ctl.Heal()
	if err := a.Send(2, []byte{1}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, col, 1)
}

// TestLinkRulePrecedence: a directed link override beats the node and
// default rules, and applies one-way only (asymmetric).
func TestLinkRulePrecedence(t *testing.T) {
	ctl := NewController(5)
	ctl.SetDefault(Rule{Drop: 1.0})
	ctl.SetLinkRule(1, 2, Rule{Pass: true}) // clean link overrides the lossy default

	net := memnet.New()
	defer net.Close()
	a := ctl.Wrap(net.Node(1))
	c := ctl.Wrap(net.Node(3))
	col2 := &collector{}
	net.Node(2).SetHandler(col2.handler)

	if err := a.Send(2, []byte{1}); err != nil { // link override: delivered
		t.Fatal(err)
	}
	if err := c.Send(2, []byte{1}); err != nil { // default: dropped
		t.Fatal(err)
	}
	waitCount(t, col2, 1)
	time.Sleep(20 * time.Millisecond)
	if got := col2.count(); got != 1 {
		t.Fatalf("delivered %d frames, want 1 (link override should be the only clean path)", got)
	}
}

// TestDelaySchedule: a schedule phase arms a delay rule at its offset and
// a later phase removes it; the stop function cancels unfired phases.
func TestDelaySchedule(t *testing.T) {
	ctl := NewController(9)
	a, col, _ := pair(t, ctl)

	fired := make(chan struct{})
	stop := ctl.StartSchedule([]Phase{
		{At: 0, Apply: func(c *Controller) {
			c.SetDefault(Rule{DelayMin: 5 * time.Millisecond, DelayMax: 10 * time.Millisecond})
			close(fired)
		}},
		{At: time.Hour, Apply: func(c *Controller) {
			t.Error("phase beyond stop() fired")
		}},
	})
	<-fired
	start := time.Now()
	if err := a.Send(2, []byte{1}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, col, 1)
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Fatalf("frame arrived after %v, expected >= ~5ms delay", e)
	}
	if ctl.Stats().Delayed != 1 {
		t.Fatalf("delayed counter = %d, want 1", ctl.Stats().Delayed)
	}
	stop()
}

// TestSelfSendUntouched: frames to self bypass chaos entirely, even under
// a Block-everything default (local timer events must survive).
func TestSelfSendUntouched(t *testing.T) {
	ctl := NewController(1)
	ctl.SetDefault(Rule{Block: true})
	net := memnet.New()
	defer net.Close()
	ep := ctl.Wrap(net.Node(1))
	col := &collector{}
	ep.SetHandler(col.handler)
	if err := ep.Send(1, []byte{6}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, col, 1)
}
