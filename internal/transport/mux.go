package transport

import (
	"fmt"
	"sync"

	"astro/internal/sched"
)

// Channel tags multiplex independent protocols over one endpoint. The tag
// is the first byte of every payload.
type Channel byte

// Channel assignments used across the repository. Keeping them in one
// place prevents collisions between layers sharing an endpoint.
const (
	ChanBRB       Channel = 1 // Byzantine reliable broadcast traffic
	ChanPayment   Channel = 2 // client submissions, confirmations, queries
	ChanCredit    Channel = 3 // Astro II CREDIT messages
	ChanConsensus Channel = 4 // PBFT-style baseline traffic
	ChanReconfig  Channel = 5 // join/leave and state transfer
	ChanLocal     Channel = 6 // self-addressed timer/batch events
)

// DefaultQueueSize is the per-channel dispatch queue capacity used when
// none is configured. Deep enough to ride out verification-latency bursts,
// shallow enough that a wedged handler exerts backpressure on the endpoint
// instead of buffering unboundedly.
const DefaultQueueSize = 1024

// Mux demultiplexes inbound messages by channel tag and prefixes outbound
// messages with their tag. A Mux owns its endpoint's handler slot.
//
// Dispatch rides the lane scheduler (internal/sched): every registered
// channel is bound to its own lane-affine flow — a bounded FIFO serialized
// onto one lane at a time. Messages of one channel are handled
// sequentially in arrival order (per-channel FIFO), but channels never
// head-of-line block each other: distinct channels bind distinct flows
// with distinct home lanes, and an idle lane steals a runnable flow whose
// home lane is busy — so a BRB handler stalled on certificate
// verification delays neither payments nor CREDITs, even on a single-core
// host. Handlers of *different* channels may therefore run concurrently;
// protocol state shared across channels must be locked.
//
// Channels that need cross-channel serialization — ChanLocal timer events
// that must interleave atomically with a protocol's message handler —
// register with SerializeWith(ch), which binds them to the target
// channel's flow (same flow key, hence the same lane and the same FIFO):
// a timer can never interleave mid-task with the channel it pokes.
//
// When a channel's flow is full, delivery for that channel blocks the
// endpoint's reader until the flow drains: bounded memory with natural
// backpressure, never silent message loss.
type Mux struct {
	ep Endpoint
	rt *sched.Runtime
	ns uint64 // flow-key namespace; distinct per mux on a shared runtime

	qsize  int
	serial bool

	mu       sync.RWMutex
	handlers map[Channel]Handler
	flows    map[Channel]*sched.Flow
	owned    []*sched.Flow // distinct flows, for diagnostics/tests
	closed   bool

	// inflight counts dispatch tasks accepted and not yet finished, so
	// Close can wait for the in-flight handler and the queued tasks it
	// turned into no-ops.
	inflight sync.WaitGroup
}

// MuxOption configures a Mux.
type MuxOption func(*Mux)

// WithQueueSize sets the per-channel dispatch queue capacity.
func WithQueueSize(n int) MuxOption {
	return func(m *Mux) {
		if n > 0 {
			m.qsize = n
		}
	}
}

// WithSerialDispatch routes every channel through one shared flow — the
// pre-sharding behavior, where all handlers of an endpoint execute
// sequentially. It exists as a measured baseline for lane dispatch and as
// a debugging aid; production deployments use the sharded default.
func WithSerialDispatch() MuxOption {
	return func(m *Mux) { m.serial = true }
}

// WithRuntime selects the lane runtime dispatch runs on. The default is
// the process-wide shared runtime (sched.Default()), which every mux,
// verifier, and settlement engine of an in-process deployment shares.
func WithRuntime(rt *sched.Runtime) MuxOption {
	return func(m *Mux) {
		if rt != nil {
			m.rt = rt
		}
	}
}

// RegisterOption configures one channel registration.
type RegisterOption func(*regOpts)

type regOpts struct {
	serializeWith Channel
	set           bool
}

// SerializeWith binds the channel being registered to target's flow, so
// handlers of the two channels execute sequentially with respect to each
// other (one flow, one FIFO, one lane at a time). Protocols use this for
// ChanLocal: a timer event must not race the message handler it pokes.
// The binding is fixed at the channel's first registration.
func SerializeWith(target Channel) RegisterOption {
	return func(o *regOpts) {
		o.serializeWith = target
		o.set = true
	}
}

// NewMux wraps ep, installing itself as the endpoint handler.
func NewMux(ep Endpoint, opts ...MuxOption) *Mux {
	m := &Mux{
		ep:       ep,
		qsize:    DefaultQueueSize,
		handlers: make(map[Channel]Handler),
		flows:    make(map[Channel]*sched.Flow),
	}
	for _, o := range opts {
		o(m)
	}
	if m.rt == nil {
		m.rt = sched.Default()
	}
	m.ns = m.rt.KeySpace()
	ep.SetHandler(m.dispatch)
	return m
}

// Endpoint returns the underlying endpoint.
func (m *Mux) Endpoint() Endpoint { return m.ep }

// ID returns the underlying endpoint's address.
func (m *Mux) ID() NodeID { return m.ep.ID() }

// Runtime returns the lane runtime dispatch runs on.
func (m *Mux) Runtime() *sched.Runtime { return m.rt }

// Register installs the handler for a channel. Registering a channel twice
// replaces the previous handler; the channel's flow binding (its own, or a
// SerializeWith target's) is fixed by the first registration.
func (m *Mux) Register(ch Channel, h Handler, opts ...RegisterOption) {
	var ro regOpts
	for _, o := range opts {
		o(&ro)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[ch] = h
	if _, bound := m.flows[ch]; bound {
		return
	}
	switch {
	case ro.set:
		m.flows[ch] = m.flowForLocked(ro.serializeWith)
	default:
		m.flows[ch] = m.flowForLocked(ch)
	}
}

// flowForLocked returns (creating if needed) the flow owned by channel ch.
// In serial mode every channel resolves to the one shared flow. Callers
// hold m.mu.
func (m *Mux) flowForLocked(ch Channel) *sched.Flow {
	if m.serial {
		ch = 0 // all channels share the flow keyed by the zero channel
	}
	if fl, ok := m.flows[ch]; ok {
		return fl
	}
	fl := m.rt.Flow(m.ns+uint64(ch), m.qsize)
	m.flows[ch] = fl
	m.owned = append(m.owned, fl)
	return fl
}

// DispatchGoroutines reports how many serialization domains the mux
// dispatches over — one per distinct flow (tests assert sharding and
// serialization). The name survives from the era when each domain was a
// dedicated goroutine; flows are now multiplexed onto the shared lanes.
func (m *Mux) DispatchGoroutines() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.owned)
}

// Close marks the mux closed and waits for the in-flight handler to
// return. Messages still queued on the flows are discarded (their tasks
// become no-ops); the endpoint itself is not closed (the mux does not own
// it), and the lane runtime — shared with other components — keeps
// running. Close must not be called from inside a handler. Safe to call
// more than once.
func (m *Mux) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.inflight.Wait()
	// Unregister this mux's flows from the (shared, long-lived) runtime.
	// No dispatch can be mid-Submit anymore: dispatch checks closed before
	// submitting, and inflight covered everything that got past the check.
	m.mu.Lock()
	for _, fl := range m.owned {
		fl.Release()
	}
	m.mu.Unlock()
}

// Send transmits payload on the given channel.
func (m *Mux) Send(to NodeID, ch Channel, payload []byte) error {
	buf := make([]byte, 0, 1+len(payload))
	buf = append(buf, byte(ch))
	buf = append(buf, payload...)
	if err := m.ep.Send(to, buf); err != nil {
		return fmt.Errorf("mux send chan %d: %w", ch, err)
	}
	return nil
}

// SendLocal enqueues payload to this node's own dispatch on ChanLocal.
// Protocol timers use this to serialize with message handling; register
// ChanLocal with SerializeWith(ch) to bind it to the channel it must
// interleave with.
func (m *Mux) SendLocal(payload []byte) error {
	return m.Send(m.ep.ID(), ChanLocal, payload)
}

// dispatch runs on the endpoint's reader goroutine: route the message to
// its channel's flow. A full flow blocks here — backpressure on the
// endpoint — rather than dropping. Unregistered channels are discarded.
func (m *Mux) dispatch(from NodeID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	ch := Channel(payload[0])
	m.mu.RLock()
	fl := m.flows[ch]
	closed := m.closed
	if fl == nil || closed {
		m.mu.RUnlock()
		return
	}
	m.inflight.Add(1) // under the RLock, so Close cannot Wait before Add
	m.mu.RUnlock()
	body := payload[1:]
	fl.Submit(func() {
		defer m.inflight.Done()
		// Resolve the handler at execution time, so late registration and
		// handler replacement behave as before; a mux closed while the
		// task sat queued discards it here.
		m.mu.RLock()
		h := m.handlers[ch]
		closed := m.closed
		m.mu.RUnlock()
		if closed || h == nil {
			return
		}
		h(from, body)
	})
}
