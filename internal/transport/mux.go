package transport

import (
	"fmt"
	"sync"
)

// Channel tags multiplex independent protocols over one endpoint. The tag
// is the first byte of every payload.
type Channel byte

// Channel assignments used across the repository. Keeping them in one
// place prevents collisions between layers sharing an endpoint.
const (
	ChanBRB       Channel = 1 // Byzantine reliable broadcast traffic
	ChanPayment   Channel = 2 // client submissions, confirmations, queries
	ChanCredit    Channel = 3 // Astro II CREDIT messages
	ChanConsensus Channel = 4 // PBFT-style baseline traffic
	ChanReconfig  Channel = 5 // join/leave and state transfer
	ChanLocal     Channel = 6 // self-addressed timer/batch events
)

// Mux demultiplexes inbound messages by channel tag and prefixes outbound
// messages with their tag. A Mux owns its endpoint's handler slot.
type Mux struct {
	ep Endpoint

	mu       sync.RWMutex
	handlers map[Channel]Handler
}

// NewMux wraps ep, installing itself as the endpoint handler.
func NewMux(ep Endpoint) *Mux {
	m := &Mux{ep: ep, handlers: make(map[Channel]Handler)}
	ep.SetHandler(m.dispatch)
	return m
}

// Endpoint returns the underlying endpoint.
func (m *Mux) Endpoint() Endpoint { return m.ep }

// ID returns the underlying endpoint's address.
func (m *Mux) ID() NodeID { return m.ep.ID() }

// Register installs the handler for a channel. Registering a channel twice
// replaces the previous handler.
func (m *Mux) Register(ch Channel, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[ch] = h
}

// Send transmits payload on the given channel.
func (m *Mux) Send(to NodeID, ch Channel, payload []byte) error {
	buf := make([]byte, 0, 1+len(payload))
	buf = append(buf, byte(ch))
	buf = append(buf, payload...)
	if err := m.ep.Send(to, buf); err != nil {
		return fmt.Errorf("mux send chan %d: %w", ch, err)
	}
	return nil
}

// SendLocal enqueues payload to this node's own dispatch goroutine on
// ChanLocal. Protocol timers use this to serialize with message handling.
func (m *Mux) SendLocal(payload []byte) error {
	return m.Send(m.ep.ID(), ChanLocal, payload)
}

func (m *Mux) dispatch(from NodeID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	ch := Channel(payload[0])
	m.mu.RLock()
	h := m.handlers[ch]
	m.mu.RUnlock()
	if h != nil {
		h(from, payload[1:])
	}
}
