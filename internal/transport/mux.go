package transport

import (
	"fmt"
	"sync"
)

// Channel tags multiplex independent protocols over one endpoint. The tag
// is the first byte of every payload.
type Channel byte

// Channel assignments used across the repository. Keeping them in one
// place prevents collisions between layers sharing an endpoint.
const (
	ChanBRB       Channel = 1 // Byzantine reliable broadcast traffic
	ChanPayment   Channel = 2 // client submissions, confirmations, queries
	ChanCredit    Channel = 3 // Astro II CREDIT messages
	ChanConsensus Channel = 4 // PBFT-style baseline traffic
	ChanReconfig  Channel = 5 // join/leave and state transfer
	ChanLocal     Channel = 6 // self-addressed timer/batch events
)

// DefaultQueueSize is the per-dispatch-queue capacity used when none is
// configured. Deep enough to ride out verification-latency bursts, shallow
// enough that a wedged handler exerts backpressure on the endpoint instead
// of buffering unboundedly.
const DefaultQueueSize = 1024

// Mux demultiplexes inbound messages by channel tag and prefixes outbound
// messages with their tag. A Mux owns its endpoint's handler slot.
//
// Dispatch is sharded: every registered channel is served by its own
// dispatch goroutine, fed by a bounded FIFO queue. Messages of one channel
// are handled sequentially in arrival order (per-channel FIFO), but
// channels never head-of-line block each other — a BRB handler stalled on
// certificate verification no longer delays payment submissions or CREDIT
// accumulation. Handlers of *different* channels may therefore run
// concurrently; protocol state shared across channels must be locked.
//
// Channels that need the old cross-channel serialization — ChanLocal timer
// events that must interleave atomically with a protocol's message handler
// — register with SerializeWith(ch), which routes them through the target
// channel's queue and goroutine, restoring pairwise sequential execution.
//
// When a channel's queue is full, delivery for that channel blocks the
// endpoint's reader until the queue drains: bounded memory with natural
// backpressure, never silent message loss.
type Mux struct {
	ep Endpoint

	qsize  int
	serial bool

	mu       sync.RWMutex
	handlers map[Channel]Handler
	queues   map[Channel]*dispatchQueue
	owned    []*dispatchQueue // distinct queues, for diagnostics/tests
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// dispatchQueue is one bounded FIFO with a single draining goroutine.
// Several channels may share one queue (SerializeWith, serial mode); the
// drainer resolves the handler per message so late registration and
// handler replacement behave as before.
type dispatchQueue struct {
	msgs chan queuedMsg
}

type queuedMsg struct {
	ch      Channel
	from    NodeID
	payload []byte
}

// MuxOption configures a Mux.
type MuxOption func(*Mux)

// WithQueueSize sets the per-channel dispatch queue capacity.
func WithQueueSize(n int) MuxOption {
	return func(m *Mux) {
		if n > 0 {
			m.qsize = n
		}
	}
}

// WithSerialDispatch routes every channel through one shared dispatch
// queue and goroutine — the pre-sharding behavior, where all handlers of
// an endpoint execute sequentially. It exists as a measured baseline for
// the sharded dispatcher and as a debugging aid; production deployments
// use the sharded default.
func WithSerialDispatch() MuxOption {
	return func(m *Mux) { m.serial = true }
}

// RegisterOption configures one channel registration.
type RegisterOption func(*regOpts)

type regOpts struct {
	serializeWith Channel
	set           bool
}

// SerializeWith routes the channel being registered through target's
// dispatch queue, so handlers of the two channels execute sequentially
// with respect to each other (single goroutine, shared FIFO). Protocols
// use this for ChanLocal: a timer event must not race the message handler
// it pokes. The binding is fixed at the channel's first registration.
func SerializeWith(target Channel) RegisterOption {
	return func(o *regOpts) {
		o.serializeWith = target
		o.set = true
	}
}

// NewMux wraps ep, installing itself as the endpoint handler.
func NewMux(ep Endpoint, opts ...MuxOption) *Mux {
	m := &Mux{
		ep:       ep,
		qsize:    DefaultQueueSize,
		handlers: make(map[Channel]Handler),
		queues:   make(map[Channel]*dispatchQueue),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	ep.SetHandler(m.dispatch)
	return m
}

// Endpoint returns the underlying endpoint.
func (m *Mux) Endpoint() Endpoint { return m.ep }

// ID returns the underlying endpoint's address.
func (m *Mux) ID() NodeID { return m.ep.ID() }

// Register installs the handler for a channel. Registering a channel twice
// replaces the previous handler; the channel's queue binding (its own, or
// a SerializeWith target's) is fixed by the first registration.
func (m *Mux) Register(ch Channel, h Handler, opts ...RegisterOption) {
	var ro regOpts
	for _, o := range opts {
		o(&ro)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[ch] = h
	if _, bound := m.queues[ch]; bound {
		return
	}
	switch {
	case ro.set:
		m.queues[ch] = m.queueForLocked(ro.serializeWith)
	default:
		m.queues[ch] = m.queueForLocked(ch)
	}
}

// queueForLocked returns (creating if needed) the dispatch queue owned by
// channel ch. In serial mode every channel resolves to the one shared
// queue. Callers hold m.mu.
func (m *Mux) queueForLocked(ch Channel) *dispatchQueue {
	if m.serial {
		ch = 0 // all channels share the queue keyed by the zero channel
	}
	if q, ok := m.queues[ch]; ok {
		return q
	}
	q := &dispatchQueue{msgs: make(chan queuedMsg, m.qsize)}
	m.queues[ch] = q
	m.owned = append(m.owned, q)
	if !m.closed {
		m.wg.Add(1)
		go m.drain(q)
	}
	return q
}

// DispatchGoroutines reports how many dispatch goroutines the mux runs —
// one per distinct queue (tests assert sharding and serialization).
func (m *Mux) DispatchGoroutines() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.owned)
}

// Close stops all dispatch goroutines and waits for in-flight handlers to
// return. Messages still queued are discarded; the endpoint itself is not
// closed (the mux does not own it). Close must not be called from inside a
// handler. Safe to call more than once.
func (m *Mux) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.done)
	m.mu.Unlock()
	m.wg.Wait()
}

// drain is one queue's dispatch goroutine.
func (m *Mux) drain(q *dispatchQueue) {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case msg := <-q.msgs:
			m.mu.RLock()
			h := m.handlers[msg.ch]
			m.mu.RUnlock()
			if h != nil {
				h(msg.from, msg.payload)
			}
		}
	}
}

// Send transmits payload on the given channel.
func (m *Mux) Send(to NodeID, ch Channel, payload []byte) error {
	buf := make([]byte, 0, 1+len(payload))
	buf = append(buf, byte(ch))
	buf = append(buf, payload...)
	if err := m.ep.Send(to, buf); err != nil {
		return fmt.Errorf("mux send chan %d: %w", ch, err)
	}
	return nil
}

// SendLocal enqueues payload to this node's own dispatch on ChanLocal.
// Protocol timers use this to serialize with message handling; register
// ChanLocal with SerializeWith(ch) to bind it to the channel it must
// interleave with.
func (m *Mux) SendLocal(payload []byte) error {
	return m.Send(m.ep.ID(), ChanLocal, payload)
}

// dispatch runs on the endpoint's reader goroutine: route the message to
// its channel's queue. A full queue blocks here — backpressure on the
// endpoint — rather than dropping. Unregistered channels are discarded.
func (m *Mux) dispatch(from NodeID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	ch := Channel(payload[0])
	m.mu.RLock()
	q := m.queues[ch]
	closed := m.closed
	m.mu.RUnlock()
	if q == nil || closed {
		return
	}
	select {
	case q.msgs <- queuedMsg{ch: ch, from: from, payload: payload[1:]}:
	case <-m.done:
	}
}
