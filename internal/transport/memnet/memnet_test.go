package memnet

import (
	"sync"
	"testing"
	"time"

	"astro/internal/transport"
)

// collector gathers messages delivered to an endpoint.
type collector struct {
	mu   sync.Mutex
	msgs []string
	from []transport.NodeID
	ch   chan struct{}
}

func newCollector(ep transport.Endpoint) *collector {
	c := &collector{ch: make(chan struct{}, 1024)}
	ep.SetHandler(func(from transport.NodeID, payload []byte) {
		c.mu.Lock()
		c.msgs = append(c.msgs, string(payload))
		c.from = append(c.from, from)
		c.mu.Unlock()
		c.ch <- struct{}{}
	})
	return c
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for message %d/%d", i+1, n)
		}
	}
}

func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.msgs))
	copy(out, c.msgs)
	return out
}

func TestDeliveryBasic(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	b := net.Node(2)
	cb := newCollector(b)
	newCollector(a)

	if err := a.Send(2, []byte("hi")); err != nil {
		t.Fatalf("send: %v", err)
	}
	cb.wait(t, 1, time.Second)
	got := cb.snapshot()
	if len(got) != 1 || got[0] != "hi" {
		t.Fatalf("delivered = %v", got)
	}
}

func TestSelfSend(t *testing.T) {
	net := New(WithLatency(Fixed(50 * time.Millisecond)))
	defer net.Close()
	a := net.Node(1)
	ca := newCollector(a)
	start := time.Now()
	if err := a.Send(1, []byte("tick")); err != nil {
		t.Fatalf("send: %v", err)
	}
	ca.wait(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("self-send took %v; should bypass latency model", elapsed)
	}
}

func TestLatencyApplied(t *testing.T) {
	net := New(WithLatency(Fixed(60 * time.Millisecond)))
	defer net.Close()
	a := net.Node(1)
	b := net.Node(2)
	cb := newCollector(b)

	start := time.Now()
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	cb.wait(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~60ms", elapsed)
	}
}

func TestCrashStopsTraffic(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	b := net.Node(2)
	cb := newCollector(b)

	net.Crash(1)
	if err := a.Send(2, []byte("should drop")); err == nil {
		t.Error("send from crashed node: want error")
	}
	net.Restore(1)
	net.Crash(2)
	if err := a.Send(2, []byte("to crashed")); err != nil {
		t.Errorf("send to crashed node should not error: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := cb.snapshot(); len(got) != 0 {
		t.Errorf("crashed node received %v", got)
	}
	if !net.Crashed(2) || net.Crashed(1) {
		t.Error("crash bookkeeping wrong")
	}
}

func TestNodeDelayInjection(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	b := net.Node(2)
	cb := newCollector(b)

	net.SetNodeDelay(1, 80*time.Millisecond)
	start := time.Now()
	if err := a.Send(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	cb.wait(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Errorf("delay injection not applied: %v", elapsed)
	}

	net.SetNodeDelay(1, 0)
	start = time.Now()
	if err := a.Send(2, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	cb.wait(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("delay not removed: %v", elapsed)
	}
}

func TestCutLink(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	b := net.Node(2)
	cb := newCollector(b)

	net.CutLink(1, 2)
	if err := a.Send(2, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := cb.snapshot(); len(got) != 0 {
		t.Errorf("cut link delivered %v", got)
	}
	net.HealLink(2, 1) // order should not matter
	if err := a.Send(2, []byte("back")); err != nil {
		t.Fatal(err)
	}
	cb.wait(t, 1, time.Second)
}

func TestSendToUnknownNodeDrops(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	if err := a.Send(42, []byte("void")); err != nil {
		t.Errorf("send to unknown node: %v", err)
	}
	if s := net.Stats(); s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestStats(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	b := net.Node(2)
	cb := newCollector(b)
	for i := 0; i < 5; i++ {
		if err := a.Send(2, []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	cb.wait(t, 5, time.Second)
	s := net.Stats()
	if s.MessagesSent != 5 || s.BytesSent != 20 {
		t.Errorf("stats = %+v", s)
	}
	net.ResetStats()
	if s := net.Stats(); s.MessagesSent != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestPayloadCopied(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	b := net.Node(2)
	cb := newCollector(b)
	buf := []byte("orig")
	if err := a.Send(2, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXX")
	cb.wait(t, 1, time.Second)
	if got := cb.snapshot(); got[0] != "orig" {
		t.Errorf("payload aliased sender buffer: %q", got[0])
	}
}

func TestClosedEndpointSend(t *testing.T) {
	net := New()
	defer net.Close()
	a := net.Node(1)
	net.Node(2)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err == nil {
		t.Error("send on closed endpoint: want error")
	}
}

func TestNodeIdempotent(t *testing.T) {
	net := New()
	defer net.Close()
	if net.Node(7) != net.Node(7) {
		t.Error("Node(7) returned two endpoints")
	}
}

func TestRegionsModel(t *testing.T) {
	m := Regions(4, 0, time.Millisecond, 8*time.Millisecond, 12*time.Millisecond)
	// nodes 0 and 4 share region 0; nodes 0 and 1 do not.
	if d := m(0, 4, 0.5); d >= time.Millisecond {
		t.Errorf("intra-region latency %v", d)
	}
	if d := m(0, 1, 0.5); d < 8*time.Millisecond || d >= 12*time.Millisecond {
		t.Errorf("inter-region latency %v", d)
	}
	e := EuropeWAN()
	if d := e(0, 1, 0.0); d < 8*time.Millisecond {
		t.Errorf("EuropeWAN inter latency %v", d)
	}
}

func TestUniformJitterBounds(t *testing.T) {
	net := New(WithSeed(123))
	m := Uniform(5*time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 1000; i++ {
		d := m(0, 1, net.uniform())
		if d < 5*time.Millisecond || d >= 10*time.Millisecond {
			t.Fatalf("sample %v out of bounds", d)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	net := New(WithLatency(Uniform(0, time.Millisecond)))
	defer net.Close()
	const senders, per = 8, 100
	dst := net.Node(99)
	cd := newCollector(dst)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep := net.Node(transport.NodeID(s))
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send(99, []byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	cd.wait(t, senders*per, 5*time.Second)
}

func TestLinkDelayAsymmetric(t *testing.T) {
	net := New()
	defer net.Close()
	a, b := net.Node(1), net.Node(2)
	ca, cb := newCollector(a), newCollector(b)

	net.SetLinkDelay(1, 2, 30*time.Millisecond)

	start := time.Now()
	if err := a.Send(2, []byte("slow")); err != nil {
		t.Fatalf("send: %v", err)
	}
	cb.wait(t, 1, time.Second)
	if e := time.Since(start); e < 25*time.Millisecond {
		t.Fatalf("1→2 arrived after %v, want >= ~30ms link delay", e)
	}

	start = time.Now()
	if err := b.Send(1, []byte("fast")); err != nil {
		t.Fatalf("send: %v", err)
	}
	ca.wait(t, 1, time.Second)
	if e := time.Since(start); e > 20*time.Millisecond {
		t.Fatalf("2→1 took %v; reverse direction must not inherit the delay", e)
	}

	net.SetLinkDelay(1, 2, 0) // removal restores the fast path
	start = time.Now()
	if err := a.Send(2, []byte("quick")); err != nil {
		t.Fatalf("send: %v", err)
	}
	cb.wait(t, 1, time.Second)
	if e := time.Since(start); e > 20*time.Millisecond {
		t.Fatalf("1→2 still slow (%v) after delay removal", e)
	}
}

func TestLinkLossSeeded(t *testing.T) {
	run := func() (delivered int) {
		net := New(WithSeed(99))
		defer net.Close()
		a, b := net.Node(1), net.Node(2)
		newCollector(a)
		cb := newCollector(b)
		net.SetLinkLoss(1, 2, 0.5)
		const n = 200
		for i := 0; i < n; i++ {
			if err := a.Send(2, []byte{byte(i)}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		want := n - int(net.Stats().Dropped)
		cb.wait(t, want, 2*time.Second)
		return want
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("same seed delivered %d vs %d messages", d1, d2)
	}
	if d1 == 0 || d1 == 200 {
		t.Fatalf("loss at p=0.5 delivered %d/200; injection not engaging", d1)
	}
}

func TestPartitionGroups(t *testing.T) {
	net := New()
	defer net.Close()
	a, b, c := net.Node(1), net.Node(2), net.Node(3)
	newCollector(a)
	cb := newCollector(b)
	cc := newCollector(c)

	net.Partition([]transport.NodeID{1}, []transport.NodeID{2})
	if err := a.Send(2, []byte("blocked")); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Node 3 is unlisted: it must still reach both sides.
	if err := a.Send(3, []byte("open")); err != nil {
		t.Fatalf("send: %v", err)
	}
	cc.wait(t, 1, time.Second)
	time.Sleep(10 * time.Millisecond)
	if got := len(cb.snapshot()); got != 0 {
		t.Fatalf("partition leaked %d messages to node 2", got)
	}

	net.HealPartition()
	if err := a.Send(2, []byte("after-heal")); err != nil {
		t.Fatalf("send: %v", err)
	}
	cb.wait(t, 1, time.Second)
}
