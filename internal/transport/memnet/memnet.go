// Package memnet implements an in-process simulated network for the
// transport.Endpoint interface. It is the experimental substrate replacing
// the paper's EC2 deployment: links have configurable latency
// distributions, nodes can crash-stop, individual nodes can have extra
// outbound delay injected (emulating `tc netem delay`), and links can be
// cut to create partitions.
//
// Each endpoint delivers inbound messages through a single reader
// goroutine; protocols layered through transport.Mux then fan out across
// the lane scheduler, one flow per channel (see the Mux concurrency
// contract).
package memnet

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/transport"
)

// Errors returned by endpoint operations.
var (
	ErrClosed  = errors.New("memnet: endpoint closed")
	ErrCrashed = errors.New("memnet: node crashed")
)

// LatencyModel computes the one-way delay for a message from one node to
// another. u is a uniformly distributed sample in [0,1) for jitter.
type LatencyModel func(from, to transport.NodeID, u float64) time.Duration

// Fixed returns a latency model with constant delay d.
func Fixed(d time.Duration) LatencyModel {
	return func(_, _ transport.NodeID, _ float64) time.Duration { return d }
}

// Uniform returns a latency model drawing delays uniformly from [lo, hi).
func Uniform(lo, hi time.Duration) LatencyModel {
	if hi < lo {
		lo, hi = hi, lo
	}
	span := float64(hi - lo)
	return func(_, _ transport.NodeID, u float64) time.Duration {
		return lo + time.Duration(u*span)
	}
}

// Regions models the paper's deployment: nodes are assigned round-robin to
// k regions; intra-region links draw from [intraLo, intraHi), inter-region
// links from [interLo, interHi). With k=4 and inter ≈ 10ms one-way this
// reproduces the ~20ms RTT across the four EC2 regions in Europe.
func Regions(k int, intraLo, intraHi, interLo, interHi time.Duration) LatencyModel {
	if k < 1 {
		k = 1
	}
	intra := Uniform(intraLo, intraHi)
	inter := Uniform(interLo, interHi)
	return func(from, to transport.NodeID, u float64) time.Duration {
		if int(from)%k == int(to)%k {
			return intra(from, to, u)
		}
		return inter(from, to, u)
	}
}

// EuropeWAN is the default latency model used by the experiment harness:
// four regions, sub-millisecond intra-region latency and ~10ms one-way
// (~20ms RTT) between regions.
func EuropeWAN() LatencyModel {
	return Regions(4, 300*time.Microsecond, 900*time.Microsecond, 8*time.Millisecond, 12*time.Millisecond)
}

// Stats are cumulative network-wide counters.
type Stats struct {
	MessagesSent uint64
	BytesSent    uint64
	Dropped      uint64
}

// Network is a simulated message-passing network.
type Network struct {
	latency LatencyModel
	inboxSz int

	// egress bandwidth model: bytes/sec per node, 0 = unlimited
	bandwidth float64
	overhead  int
	busyMu    sync.Mutex
	busy      map[transport.NodeID]time.Time

	msgs    atomic.Uint64
	bytes   atomic.Uint64
	dropped atomic.Uint64

	prng atomic.Uint64

	mu         sync.RWMutex
	nodes      map[transport.NodeID]*node
	crashed    map[transport.NodeID]bool
	delays     map[transport.NodeID]time.Duration
	cuts       map[[2]transport.NodeID]bool
	linkDelays map[[2]transport.NodeID]time.Duration // directed [from,to]
	linkLoss   map[[2]transport.NodeID]float64       // directed [from,to]
	groups     map[transport.NodeID]int              // partition membership
	closed     bool
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the link latency model. The default is zero latency.
func WithLatency(m LatencyModel) Option {
	return func(n *Network) { n.latency = m }
}

// WithSeed seeds the jitter generator, making latency draws reproducible.
func WithSeed(seed uint64) Option {
	return func(n *Network) { n.prng.Store(seed) }
}

// WithBandwidth models per-node egress capacity: messages leaving a node
// serialize onto its link at bytesPerSec, each charged overheadBytes of
// framing on top of its payload. This is what makes leader-based protocols
// bottleneck on the leader and all-to-all broadcasts bottleneck globally —
// the paper's deployment had ~30 MiB/s between EC2 regions. Zero disables
// the model.
func WithBandwidth(bytesPerSec float64, overheadBytes int) Option {
	return func(n *Network) {
		n.bandwidth = bytesPerSec
		n.overhead = overheadBytes
	}
}

// WithInboxSize sets the per-node inbound queue capacity.
func WithInboxSize(size int) Option {
	return func(n *Network) {
		if size > 0 {
			n.inboxSz = size
		}
	}
}

// New creates a network.
func New(opts ...Option) *Network {
	n := &Network{
		latency:    Fixed(0),
		inboxSz:    1 << 14,
		nodes:      make(map[transport.NodeID]*node),
		crashed:    make(map[transport.NodeID]bool),
		delays:     make(map[transport.NodeID]time.Duration),
		cuts:       make(map[[2]transport.NodeID]bool),
		linkDelays: make(map[[2]transport.NodeID]time.Duration),
		linkLoss:   make(map[[2]transport.NodeID]float64),
		busy:       make(map[transport.NodeID]time.Time),
	}
	n.prng.Store(0x9e3779b97f4a7c15)
	for _, o := range opts {
		o(n)
	}
	return n
}

// uniform returns the next jitter sample in [0,1) from a lock-free
// splitmix64 stream. Statistical quality is ample for latency jitter.
func (n *Network) uniform() float64 {
	x := n.prng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Stats returns a snapshot of the cumulative counters.
func (n *Network) Stats() Stats {
	return Stats{
		MessagesSent: n.msgs.Load(),
		BytesSent:    n.bytes.Load(),
		Dropped:      n.dropped.Load(),
	}
}

// ResetStats zeroes the cumulative counters.
func (n *Network) ResetStats() {
	n.msgs.Store(0)
	n.bytes.Store(0)
	n.dropped.Store(0)
}

// Node returns the endpoint with the given address, creating it if needed.
func (n *Network) Node(id transport.NodeID) transport.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[id]; ok {
		return nd
	}
	nd := &node{
		net:   n,
		id:    id,
		inbox: make(chan envelope, n.inboxSz),
		done:  make(chan struct{}),
	}
	n.nodes[id] = nd
	go nd.dispatch()
	return nd
}

// Crash marks a node as crash-stopped: all of its inbound and outbound
// traffic is silently discarded from now on. Crash-stop is permanent for
// the protocols under study; Restore exists for tests.
func (n *Network) Crash(id transport.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restore clears a node's crashed flag (test helper; the paper's
// experiments use crash-stop only).
func (n *Network) Restore(id transport.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether a node is crash-stopped.
func (n *Network) Crashed(id transport.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed[id]
}

// SetNodeDelay injects extra delay on every packet leaving id, emulating
// `tc qdisc ... netem delay d` on the node's interface. A zero duration
// removes the injection.
func (n *Network) SetNodeDelay(id transport.NodeID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.delays, id)
		return
	}
	n.delays[id] = d
}

// SetLinkDelay injects extra delay on the directed link from → to,
// emulating asymmetric netem on a single path. It composes with
// SetNodeDelay and the base latency model. A non-positive duration
// removes the injection.
func (n *Network) SetLinkDelay(from, to transport.NodeID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := [2]transport.NodeID{from, to}
	if d <= 0 {
		delete(n.linkDelays, k)
		return
	}
	n.linkDelays[k] = d
}

// SetLinkLoss drops each packet on the directed link from → to with
// probability p (netem-style random loss). Draws come from the network's
// seeded jitter stream, so runs are reproducible. p <= 0 removes the
// injection; p >= 1 drops everything.
func (n *Network) SetLinkLoss(from, to transport.NodeID, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := [2]transport.NodeID{from, to}
	if p <= 0 {
		delete(n.linkLoss, k)
		return
	}
	n.linkLoss[k] = p
}

// Partition splits the listed nodes into isolated groups: traffic between
// two nodes in different groups is dropped. Nodes not listed in any group
// are unaffected (they can reach everyone), so client endpoints keep
// working unless explicitly partitioned. Calling Partition replaces any
// previous partition.
func (n *Network) Partition(groups ...[]transport.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[transport.NodeID]int)
	for g, members := range groups {
		for _, id := range members {
			n.groups[id] = g
		}
	}
}

// HealPartition removes the partition installed by Partition.
func (n *Network) HealPartition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = nil
}

// partitionedLocked reports whether a partition separates a and b.
// Callers hold n.mu.
func (n *Network) partitionedLocked(a, b transport.NodeID) bool {
	if n.groups == nil {
		return false
	}
	ga, oka := n.groups[a]
	gb, okb := n.groups[b]
	return oka && okb && ga != gb
}

// CutLink drops all traffic in both directions between a and b.
func (n *Network) CutLink(a, b transport.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cuts[linkKey(a, b)] = true
}

// HealLink restores a previously cut link.
func (n *Network) HealLink(a, b transport.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cuts, linkKey(a, b))
}

func linkKey(a, b transport.NodeID) [2]transport.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]transport.NodeID{a, b}
}

// Close shuts the network down; all endpoints stop dispatching.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, nd := range n.nodes {
		nd.closeLocked()
	}
}

type envelope struct {
	from    transport.NodeID
	payload []byte
}

type node struct {
	net   *Network
	id    transport.NodeID
	inbox chan envelope
	done  chan struct{}

	handler atomic.Pointer[transport.Handler]
	closed  atomic.Bool
}

var _ transport.Endpoint = (*node)(nil)

func (nd *node) ID() transport.NodeID { return nd.id }

func (nd *node) SetHandler(h transport.Handler) {
	nd.handler.Store(&h)
}

func (nd *node) Close() error {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	nd.closeLocked()
	return nil
}

func (nd *node) closeLocked() {
	if nd.closed.CompareAndSwap(false, true) {
		close(nd.done)
	}
}

func (nd *node) dispatch() {
	for {
		select {
		case <-nd.done:
			return
		case env := <-nd.inbox:
			if nd.net.Crashed(nd.id) {
				continue
			}
			if h := nd.handler.Load(); h != nil {
				(*h)(env.from, env.payload)
			}
		}
	}
}

// Send implements transport.Endpoint. The payload is copied, so callers
// may reuse their buffers.
func (nd *node) Send(to transport.NodeID, payload []byte) error {
	if nd.closed.Load() {
		return ErrClosed
	}
	net := nd.net

	net.mu.RLock()
	if net.closed {
		net.mu.RUnlock()
		return ErrClosed
	}
	if net.crashed[nd.id] {
		net.mu.RUnlock()
		return ErrCrashed
	}
	dest, ok := net.nodes[to]
	cut := net.cuts[linkKey(nd.id, to)]
	if to != nd.id && net.partitionedLocked(nd.id, to) {
		cut = true
	}
	extra := net.delays[nd.id]
	if to != nd.id {
		extra += net.linkDelays[[2]transport.NodeID{nd.id, to}]
	}
	loss := net.linkLoss[[2]transport.NodeID{nd.id, to}]
	destCrashed := net.crashed[to]
	net.mu.RUnlock()

	net.msgs.Add(1)
	net.bytes.Add(uint64(len(payload)))

	if !ok || cut || destCrashed {
		net.dropped.Add(1)
		return nil // like UDP to a dead host: silently lost
	}
	if loss > 0 && to != nd.id && net.uniform() < loss {
		net.dropped.Add(1)
		return nil
	}

	buf := make([]byte, len(payload))
	copy(buf, payload)
	env := envelope{from: nd.id, payload: buf}

	var delay time.Duration
	if to != nd.id { // self-sends bypass the latency and bandwidth models
		delay = net.latency(nd.id, to, net.uniform()) + extra
		if net.bandwidth > 0 {
			delay += net.serialize(nd.id, len(payload))
		}
	}
	if delay <= 0 {
		dest.enqueue(env)
		return nil
	}
	if delay > 10*time.Minute {
		delay = 10 * time.Minute // clamp absurd models
	}
	time.AfterFunc(delay, func() { dest.enqueue(env) })
	return nil
}

// serialize charges a message against the sender's egress link and
// returns the extra wait before it reaches the wire: the transmission time
// plus any queueing behind earlier messages.
func (n *Network) serialize(from transport.NodeID, payloadLen int) time.Duration {
	tx := time.Duration(float64(payloadLen+n.overhead) / n.bandwidth * float64(time.Second))
	now := time.Now()
	n.busyMu.Lock()
	start := now
	if b, ok := n.busy[from]; ok && b.After(start) {
		start = b
	}
	end := start.Add(tx)
	n.busy[from] = end
	n.busyMu.Unlock()
	return end.Sub(now)
}

func (nd *node) enqueue(env envelope) {
	select {
	case nd.inbox <- env:
	case <-nd.done:
	}
}
