package transport_test

import (
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/transport/memnet"
)

func TestMuxRoutesByChannel(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	a := transport.NewMux(net.Node(1))
	b := transport.NewMux(net.Node(2))

	got := make(chan string, 4)
	b.Register(transport.ChanBRB, func(from transport.NodeID, p []byte) {
		got <- "brb:" + string(p)
	})
	b.Register(transport.ChanPayment, func(from transport.NodeID, p []byte) {
		got <- "pay:" + string(p)
	})

	if err := a.Send(2, transport.ChanBRB, []byte("echo")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, transport.ChanPayment, []byte("submit")); err != nil {
		t.Fatal(err)
	}
	// Unregistered channel: silently ignored.
	if err := a.Send(2, transport.ChanConsensus, []byte("drop")); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{"brb:echo": true, "pay:submit": true}
	for i := 0; i < 2; i++ {
		select {
		case m := <-got:
			if !want[m] {
				t.Errorf("unexpected message %q", m)
			}
			delete(want, m)
		case <-time.After(time.Second):
			t.Fatal("timeout")
		}
	}
	select {
	case m := <-got:
		t.Errorf("extra message %q", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMuxSendLocal(t *testing.T) {
	net := memnet.New(memnet.WithLatency(memnet.Fixed(30 * time.Millisecond)))
	defer net.Close()
	a := transport.NewMux(net.Node(1))

	got := make(chan struct{}, 1)
	a.Register(transport.ChanLocal, func(from transport.NodeID, p []byte) {
		if from != 1 || string(p) != "tick" {
			t.Errorf("local msg from=%d p=%q", from, p)
		}
		got <- struct{}{}
	})
	start := time.Now()
	if err := a.SendLocal([]byte("tick")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Error("SendLocal should bypass the latency model")
	}
}

func TestMuxEmptyPayloadIgnored(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	a := net.Node(1)
	mb := transport.NewMux(net.Node(2))
	called := make(chan struct{}, 1)
	mb.Register(transport.ChanBRB, func(transport.NodeID, []byte) { called <- struct{}{} })
	// Raw empty payload bypasses Mux.Send framing.
	if err := a.Send(2, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-called:
		t.Error("empty payload reached a handler")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestNodeIDMapping(t *testing.T) {
	if transport.ReplicaNode(7) != 7 {
		t.Error("ReplicaNode")
	}
	if transport.ClientNode(3) != transport.ClientNodeBase+3 {
		t.Error("ClientNode")
	}
	if transport.ClientNode(0) <= transport.ReplicaNode(1<<19) {
		t.Error("client and replica address spaces overlap")
	}
}
