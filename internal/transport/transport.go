// Package transport defines the message-passing abstraction shared by
// every protocol in this repository, and a channel multiplexer for layering
// several protocols over one endpoint.
//
// Two implementations exist:
//
//   - memnet: an in-process simulated network with configurable link
//     latency, crash-stop failures, netem-style per-node delay injection,
//     and link cuts — the substrate for the paper's experiments;
//   - tcpnet: a real TCP transport with length-prefixed frames for
//     multi-process deployments.
package transport

import "astro/internal/types"

// NodeID identifies an endpoint on a network. Replicas use their
// types.ReplicaID values directly; client endpoints are allocated from
// ClientNodeBase upwards so the two spaces never collide.
type NodeID uint32

// ClientNodeBase is the first NodeID used for client endpoints.
const ClientNodeBase NodeID = 1 << 20

// ReplicaNode converts a replica identity to its network address.
func ReplicaNode(id types.ReplicaID) NodeID { return NodeID(id) }

// ClientNode converts a client identity to its network address.
func ClientNode(id types.ClientID) NodeID { return ClientNodeBase + NodeID(id) }

// Handler processes an inbound message. Implementations of Endpoint invoke
// the handler sequentially from a single reader goroutine per endpoint, so
// a handler installed directly with SetHandler may maintain state without
// locking.
//
// Protocols, however, attach through Mux, whose dispatch is sharded: each
// registered Channel gets its own dispatch goroutine, so handlers of one
// channel run sequentially (per-channel FIFO) but handlers of different
// channels run concurrently. Protocol state shared across channels must be
// synchronized; channels needing mutual serialization (timer events and
// the handler they poke) register with SerializeWith. See Mux.
type Handler func(from NodeID, payload []byte)

// Endpoint is one node's attachment to a network.
type Endpoint interface {
	// ID returns this endpoint's address.
	ID() NodeID
	// Send transmits payload to the endpoint with address to. Send never
	// blocks on remote progress; delivery is asynchronous and, on memnet,
	// subject to the configured latency model. Sending to self is
	// permitted and delivers through the endpoint's own inbound path;
	// protocols that need a self-sent timer event serialized with a
	// message handler bind the two channels with Mux's SerializeWith.
	Send(to NodeID, payload []byte) error
	// SetHandler installs the inbound message handler. No message is
	// delivered before it is called; implementations buffer frames that
	// arrive earlier (tcpnet parks them and flushes, in arrival order, on
	// installation) or may drop them, so protocols must still install the
	// handler before expecting traffic.
	SetHandler(h Handler)
	// Close detaches the endpoint. Further Sends fail.
	Close() error
}
