package astro

import (
	"testing"
	"time"
)

func TestSystemQuickstart(t *testing.T) {
	sys, err := New(Options{Replicas: 4, Genesis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	alice := sys.Client(1)
	id, err := alice.Pay(2, 250)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if bal := sys.Balance(1); bal != 750 {
		t.Errorf("balance(1) = %d, want 750", bal)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.Balance(2) != 1250 {
		if time.Now().After(deadline) {
			t.Fatalf("balance(2) = %d, want 1250", sys.Balance(2))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSystemAstroI(t *testing.T) {
	sys, err := New(Options{Version: AstroI, Replicas: 4, Genesis: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	alice := sys.Client(1)
	id, err := alice.Pay(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSystemSharded(t *testing.T) {
	sys, err := New(Options{
		Shards:  Topology{NumShards: 2, PerShard: 4},
		Genesis: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Clients 0 and 1 land in different shards.
	alice := sys.Client(0)
	id, err := alice.Pay(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.Balance(1) != 1100 {
		if time.Now().After(deadline) {
			t.Fatalf("cross-shard balance = %d", sys.Balance(1))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShardingRequiresAstroII(t *testing.T) {
	_, err := New(Options{Version: AstroI, Shards: Topology{NumShards: 2, PerShard: 4}})
	if err == nil {
		t.Fatal("sharded Astro I accepted")
	}
}

func TestAudit(t *testing.T) {
	sys, err := New(Options{Replicas: 4, Genesis: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	alice := sys.Client(1)
	for i := 0; i < 3; i++ {
		id, err := alice.Pay(2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		allOK := true
		for _, r := range sys.Replicas() {
			log, ok := sys.Audit(r, 1)
			if !ok {
				t.Fatalf("replica %d: inconsistent xlog", r)
			}
			if len(log) != 3 {
				allOK = false
			}
		}
		if allOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("xlogs did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := sys.Audit(99, 1); ok {
		t.Error("audit of unknown replica succeeded")
	}
}

func TestFaultInjection(t *testing.T) {
	sys, err := New(Options{Replicas: 4, Genesis: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	alice := sys.Client(1)
	// Crash a replica that is not Alice's representative.
	var victim ReplicaID
	for _, r := range sys.Replicas() {
		if r != sys.RepresentativeOf(1) {
			victim = r
			break
		}
	}
	sys.Crash(victim)
	id, err := alice.Pay(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatalf("payment with one crashed replica: %v", err)
	}
}
