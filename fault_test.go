package astro

import (
	"testing"
	"time"
)

// TestByzantineFaultViaFacade: arm a Byzantine behavior through the
// public surface, run payments under a live audit, and confirm the
// f-tolerance claim holds — confirmed payments, zero violations.
func TestByzantineFaultViaFacade(t *testing.T) {
	sys, err := New(Options{Replicas: 4, Genesis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if err := sys.InjectFault(9, FaultEquivocate); err == nil {
		t.Fatal("unknown replica accepted")
	}
	if err := sys.InjectFault(sys.Replicas()[0], "no-such-kind"); err == nil {
		t.Fatal("unknown fault kind accepted")
	}

	var victim ReplicaID
	for _, r := range sys.Replicas() {
		if r != sys.RepresentativeOf(1) && r != sys.RepresentativeOf(2) {
			victim = r
			break
		}
	}
	stop := sys.StartAudit([]ClientID{1, 2}, victim)
	if err := sys.InjectFault(victim, FaultWithholdCommits); err != nil {
		t.Fatal(err)
	}

	alice := sys.Client(1)
	for i := 0; i < 3; i++ {
		id, err := alice.Pay(2, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
			t.Fatalf("payment %d under Byzantine fault: %v", i, err)
		}
	}
	rep := stop()
	if rep.Samples == 0 {
		t.Error("audit never sampled")
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation under f faulty: %s", v)
	}
	if err := sys.ClearFault(victim); err != nil {
		t.Fatal(err)
	}
}

// TestChaosViaFacade: a chaos profile on the public Options must perturb
// traffic (counters move) without breaking confirmation, and partitions
// plus asymmetric link delays must be drivable from the facade.
func TestChaosViaFacade(t *testing.T) {
	sys, err := New(Options{Replicas: 4, Genesis: 1000, Chaos: &ChaosProfile{
		Seed:     11,
		Drop:     0.02,
		DelayMin: 100 * time.Microsecond,
		DelayMax: time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	alice := sys.Client(1)
	id, err := alice.Pay(2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatalf("payment under chaos: %v", err)
	}
	st, err := sys.ChaosStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent == 0 {
		t.Error("chaos controller saw no traffic")
	}

	ids := sys.Replicas()
	sys.SetLinkDelay(ids[0], ids[1], 2*time.Millisecond)
	sys.Partition(ids[:1], ids[1:])
	sys.HealPartition()
	sys.SetLinkDelay(ids[0], ids[1], 0)
	id, err = alice.Pay(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatalf("payment after heal: %v", err)
	}

	plain, err := New(Options{Replicas: 4, Genesis: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.ChaosStats(); err == nil {
		t.Error("ChaosStats on a chaos-less system must error")
	}
}
