// Command astro-node runs one Astro replica over real TCP, for
// multi-process deployments.
//
// A four-replica Astro II deployment on one machine:
//
//	astro-node -id 0 -listen :7000 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 &
//	astro-node -id 1 -listen :7001 -peers ... &
//	astro-node -id 2 -listen :7002 -peers ... &
//	astro-node -id 3 -listen :7003 -peers ... &
//
// then drive it with cmd/astro-client.
//
// Keys are derived deterministically from -secret so all nodes share a
// registry without a distribution step — a demo convenience; production
// deployments distribute independently generated keys.
//
// # Durability
//
// With -data-dir the replica keeps an append-only write-ahead log plus
// periodic compacted snapshots under the given directory, and survives
// kill -9: restart the process with the same flags and it replays its
// log, fetches what it missed from live peers, re-requests any CREDIT
// certificates lost while it was down, and resumes serving. The
// directory belongs to exactly one replica identity — never share it
// between nodes or reuse it under a different -id. On SIGINT/SIGTERM the
// node flushes and fsyncs buffered work before exiting, so a graceful
// stop loses nothing; an ungraceful one loses at most what the sync
// contract allows (see internal/wal). Without -data-dir the replica is
// memory-only and a crash is permanent (pre-PR-6 behavior).
//
// # Paged account state
//
// -state-cache N bounds how many accounts the replica holds in memory;
// everything colder pages to an embedded KV store inside -data-dir and
// faults back in on access, and WAL compactions shrink from a full state
// image to the dirty accounts plus a small manifest. Use it when the
// account population dwarfs the working set — memory then scales with
// the hot set, and restart time with the log tail, not with total
// accounts.
//
// Sizing: pick N ≈ 2× the number of distinct accounts active in a
// snapshot interval (spenders and beneficiaries both count), with a
// floor of two per state stripe (32 at the default 16 stripes; smaller
// values are rounded up). Each resident account costs roughly its xlog
// length × 32 bytes plus ~200 bytes of bookkeeping. A cache miss adds
// one random read (~tens of µs on SSDs) to that payment's settlement;
// watch the faults/evictions counters (Replica.PagingStats) — a fault
// rate near the payment rate means N is below the working set and the
// node is thrashing. 0 keeps the pre-paging behavior: every account
// resident, full-image snapshots.
//
// # Chaos and Byzantine faults
//
// -chaos interposes the seeded fault injector on this node's outbound
// traffic, with the rule mini-language from internal/transport/chaos:
//
//	astro-node ... -chaos 'drop=0.03,corrupt=0.01,delay=200us-2ms' -chaos-seed 7
//
// -chaos-schedule arms timed phases (partitions, rule changes, heals).
// Offsets are relative to node start; chaos is outbound-only, so giving
// every node the same schedule string and starting them together yields
// a consistent cluster-wide partition:
//
//	-chaos-schedule '5s:part=0 1|2 3;15s:heal;20s:drop=0.2;30s:clear'
//
// -fault arms a Byzantine replica behavior from the internal/sim suite
// (equivocate, withhold-commits, forge-refs, nack-storm, stale-view) on
// this node — for harness runs only, obviously.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/reconfig"
	"astro/internal/sim"
	"astro/internal/transport"
	"astro/internal/transport/chaos"
	"astro/internal/transport/tcpnet"
	"astro/internal/types"
	"astro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "astro-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id         = flag.Int("id", 0, "this replica's identity")
		listen     = flag.String("listen", ":7000", "TCP listen address")
		peers      = flag.String("peers", "", "comma-separated id=host:port for every replica (including this one)")
		version    = flag.Int("version", 2, "Astro variant: 1 (echo-based) or 2 (signature-based)")
		genesis    = flag.Uint64("genesis", 1_000_000, "initial balance of every client")
		secret     = flag.String("secret", "astro-demo", "shared secret for deterministic demo keys")
		batch      = flag.Int("batch", 256, "max payments per broadcast batch")
		delay      = flag.Duration("batch-delay", 5*time.Millisecond, "batch assembly delay bound")
		dataDir    = flag.String("data-dir", "", "durable state directory (WAL + snapshots); empty = memory-only")
		snapEvery  = flag.Int("wal-snapshot-every", 0, "settled batches between WAL compactions (0 = default)")
		stateCache = flag.Int("state-cache", 0, "max accounts resident in memory; cold accounts page to the data directory's KV store (0 = all resident; requires -data-dir)")
		chaosRule  = flag.String("chaos", "", "chaos default rule, e.g. 'drop=0.03,corrupt=0.01,delay=200us-2ms' (empty = off)")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "chaos fault-injection seed")
		chaosSch   = flag.String("chaos-schedule", "", "timed chaos phases, e.g. '5s:part=0 1|2 3;15s:heal' (offsets from node start)")
		fault      = flag.String("fault", "", "arm a Byzantine behavior: equivocate|withhold-commits|forge-refs|nack-storm|stale-view")
	)
	flag.Parse()

	peerMap, ids, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	if _, ok := peerMap[transport.NodeID(*id)]; !ok {
		return fmt.Errorf("-peers must include this replica (id %d)", *id)
	}

	tcp, err := tcpnet.New(tcpnet.Config{
		Self:   transport.NodeID(*id),
		Listen: *listen,
		Peers:  peerMap,
	})
	if err != nil {
		return err
	}
	defer tcp.Close()

	// Endpoint stack, bottom up: TCP, then the chaos injector (so drops
	// and partitions apply to real connections), then the Byzantine
	// interposer (so forged traffic rides the chaos rules like honest
	// frames), then the Mux.
	var ep transport.Endpoint = tcp
	prof := chaos.Profile{Seed: *chaosSeed}
	if *chaosRule != "" {
		if prof.Default, err = chaos.ParseRule(*chaosRule); err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
	}
	if *chaosSch != "" {
		if prof.Schedule, err = chaos.ParseSchedule(*chaosSch); err != nil {
			return fmt.Errorf("-chaos-schedule: %w", err)
		}
	}
	if !prof.Zero() {
		ctrl, stopChaos := prof.Start()
		defer stopChaos()
		ep = ctrl.Wrap(ep)
		fmt.Printf("astro-node: chaos armed (seed %d, rule %q, %d scheduled phases)\n",
			*chaosSeed, chaos.FormatRule(prof.Default), len(prof.Schedule))
	}

	registry := crypto.NewRegistry()
	var myKeys *crypto.KeyPair
	for _, rid := range ids {
		kp, err := crypto.DeriveKeyPair([]byte(fmt.Sprintf("%s/%d", *secret, rid)))
		if err != nil {
			return err
		}
		registry.Add(rid, kp.Public())
		if rid == types.ReplicaID(*id) {
			myKeys = kp
		}
	}

	if *fault != "" {
		b, err := sim.NewBehavior(sim.FaultKind(*fault), types.ReplicaID(*id), myKeys,
			ids, 2*types.MaxFaults(len(ids))+1)
		if err != nil {
			return err
		}
		ep = sim.WrapBehavior(ep, b)
		fmt.Printf("astro-node: Byzantine behavior %q armed\n", b.Name())
	}
	mux := transport.NewMux(ep)

	v := core.AstroII
	if *version == 1 {
		v = core.AstroI
	}
	var be wal.Backend
	if *dataDir != "" {
		be, err = wal.OpenAuto(*dataDir, *stateCache > 0)
		if err != nil {
			return err
		}
	} else if *stateCache > 0 {
		return fmt.Errorf("-state-cache requires -data-dir")
	}
	g := types.Amount(*genesis)
	rep, err := core.NewReplica(core.Config{
		Version:    v,
		Self:       types.ReplicaID(*id),
		Replicas:   ids,
		F:          types.MaxFaults(len(ids)),
		Mux:        mux,
		Genesis:    func(types.ClientID) types.Amount { return g },
		BatchSize:  *batch,
		BatchDelay: *delay,
		Auth:       crypto.NewLinkAuthenticator(types.ReplicaID(*id), []byte(*secret)),
		Keys:       myKeys,
		Registry:   registry,
		// One worker per core: a standalone node owns the whole machine,
		// and signature verification is the settlement bottleneck.
		Verifier:           verifier.New(0),
		WAL:                be,
		WALSnapshotEvery:   *snapEvery,
		StateCacheAccounts: *stateCache,
	})
	if err != nil {
		return err
	}

	if *dataDir != "" {
		if rep.Recovered() {
			// Catch up on deliveries missed while down. FetchState owns the
			// reconfig channel, so run it before NewManager registers the
			// member-side handler. A timeout is survivable — anti-entropy
			// through normal traffic and CREDITREDO still apply — and
			// expected when the whole cluster cold-starts together.
			var others []types.ReplicaID
			for _, rid := range ids {
				if rid != types.ReplicaID(*id) {
					others = append(others, rid)
				}
			}
			snap, err := reconfig.FetchState(reconfig.FetchConfig{
				Mux: mux, Peers: others, Timeout: 10 * time.Second,
			})
			switch {
			case err == nil:
				if err := rep.MergeFullSnapshot(snap); err != nil {
					return fmt.Errorf("peer catch-up: %w", err)
				}
				fmt.Println("astro-node: recovered from WAL and caught up from peers")
			case errors.Is(err, reconfig.ErrFetchTimeout):
				fmt.Println("astro-node: recovered from WAL; no peer answered catch-up (continuing)")
			default:
				return err
			}
		}
		// Serve our own full snapshot to peers recovering later.
		reconfig.NewManager(reconfig.Config{
			Self:        types.ReplicaID(*id),
			Mux:         mux,
			Keys:        myKeys,
			Registry:    registry,
			InitialView: reconfig.View{Num: 1, Members: ids},
			Full:        rep,
		})
	}

	fmt.Printf("astro-node: replica %d (%s) serving %d-replica %v deployment on %s\n",
		*id, tcp.Addr(), len(ids), v, *listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("astro-node: shutting down")
	// Flush and fsync buffered work so a graceful stop loses nothing.
	rep.Close()
	return nil
}

// parsePeers parses "0=host:port,1=host:port,...".
func parsePeers(s string) (map[transport.NodeID]string, []types.ReplicaID, error) {
	if s == "" {
		return nil, nil, fmt.Errorf("-peers is required")
	}
	peers := make(map[transport.NodeID]string)
	var ids []types.ReplicaID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		peers[transport.NodeID(id)] = kv[1]
		ids = append(ids, types.ReplicaID(id))
	}
	if len(ids) < 4 {
		return nil, nil, fmt.Errorf("need at least 4 replicas (3f+1, f>=1), got %d", len(ids))
	}
	return peers, ids, nil
}
