// Command astro-client drives an Astro deployment started with
// cmd/astro-node, submitting payments and querying balances over TCP.
//
//	astro-client -id 1 -peers 0=127.0.0.1:7000,...  balance
//	astro-client -id 1 -peers ...  pay -to 2 -amount 50 -count 10
//	astro-client -id 1 -peers ...  stats
//	astro-client -id 1 -peers ...  audit -genesis 1000000
//
// Payments ride the hardened retry loop (core.PayReliable): the sequence
// number is assigned and the payment signed once, and the byte-identical
// frame is resent with jittered exponential backoff across lost frames,
// representative restarts, and chaos-level packet loss — a retry can
// re-confirm but never double-spend. Each retry resyncs the sequence view
// first, so a representative that restarted from its WAL mid-run is
// picked up transparently.
//
// stats prints the representative's client-edge rejection counters — the
// observable form of "the replica is absorbing an attack".
//
// audit fetches a full state snapshot from every reachable replica (the
// same state-transfer channel recovering replicas use; nodes must run
// with -data-dir) and runs the invariant battery over the set:
// conservation, per-client FIFO, no duplicate settlement, and agreement.
// Exit status 1 on any violation. Run it against a quiescent deployment —
// mid-traffic cuts can legitimately disagree in transient ways.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"astro/internal/core"
	"astro/internal/reconfig"
	"astro/internal/sim"
	"astro/internal/transport"
	"astro/internal/transport/tcpnet"
	"astro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "astro-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id    = flag.Uint64("id", 1, "this client's identity")
		peers = flag.String("peers", "", "comma-separated id=host:port for every replica")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: astro-client [flags] {pay|balance|stats|audit} [command flags]")
	}

	peerMap, ids, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	ep, err := tcpnet.New(tcpnet.Config{
		Self:  transport.ClientNode(types.ClientID(*id)),
		Peers: peerMap,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	mux := transport.NewMux(ep)

	repOf := func(c types.ClientID) types.ReplicaID {
		return ids[uint64(c)%uint64(len(ids))]
	}
	client := core.NewClient(types.ClientID(*id), repOf, mux)

	switch flag.Arg(0) {
	case "pay":
		fs := flag.NewFlagSet("pay", flag.ContinueOnError)
		to := fs.Uint64("to", 2, "beneficiary client id")
		amount := fs.Uint64("amount", 1, "amount per payment")
		count := fs.Int("count", 1, "number of payments")
		timeout := fs.Duration("timeout", 5*time.Second, "per-attempt confirmation timeout")
		attempts := fs.Int("attempts", 8, "submit attempts per payment before giving up")
		backoff := fs.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubled per attempt, jittered)")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			return err
		}
		// The client process is stateless across runs: resync the sequence
		// counter from the replica so a restart does not reuse identifiers
		// that already settled (those payments would silently never settle).
		next, err := client.SyncSeq(*timeout)
		if err != nil {
			return fmt.Errorf("sync seq: %w", err)
		}
		if next > 1 {
			fmt.Printf("resuming at seq %d\n", next)
		}
		pol := core.RetryPolicy{
			Attempts: *attempts,
			Timeout:  *timeout,
			Backoff:  *backoff,
			Resync:   true,
		}
		start := time.Now()
		for i := 0; i < *count; i++ {
			pid, err := client.PayReliable(types.ClientID(*to), types.Amount(*amount), pol)
			if err != nil {
				return fmt.Errorf("payment %v: %w", pid, err)
			}
			fmt.Printf("settled %v: %d -> %d amount %d\n", pid, *id, *to, *amount)
		}
		elapsed := time.Since(start)
		fmt.Printf("%d payments in %v (%.1f pps)\n", *count, elapsed.Round(time.Millisecond),
			float64(*count)/elapsed.Seconds())
		return nil
	case "balance":
		bal, err := client.QueryBalance(10 * time.Second)
		if err != nil {
			return fmt.Errorf("balance: %w", err)
		}
		fmt.Printf("client %d balance: %d\n", *id, bal)
		return nil
	case "stats":
		s, err := client.QueryStats(10 * time.Second)
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		fmt.Printf("replica %d edge rejections (total %d):\n", repOf(types.ClientID(*id)), s.Total())
		fmt.Printf("  malformed=%d spoofed=%d wrong-rep=%d bad-sig=%d\n",
			s.Malformed, s.Spoofed, s.WrongRep, s.BadSig)
		fmt.Printf("  seq-zero=%d future-seq=%d settled-replay=%d conflicting=%d\n",
			s.SeqZero, s.FutureSeq, s.SettledReplay, s.Conflicting)
		fmt.Printf("  held-overflow=%d credit-outsider=%d\n", s.HeldOverflow, s.CreditOutsider)
		return nil
	case "audit":
		fs := flag.NewFlagSet("audit", flag.ContinueOnError)
		version := fs.Int("version", 2, "Astro variant the deployment runs (1 or 2)")
		genesis := fs.Uint64("genesis", 1_000_000, "initial balance of every client (must match the nodes)")
		timeout := fs.Duration("timeout", 10*time.Second, "per-replica snapshot fetch timeout")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			return err
		}
		v := core.AstroII
		if *version == 1 {
			v = core.AstroI
		}
		exports := make(map[types.ReplicaID][]core.AccountExport)
		for _, rid := range ids {
			snap, err := reconfig.FetchState(reconfig.FetchConfig{
				Mux: mux, Peers: []types.ReplicaID{rid}, Timeout: *timeout,
			})
			if err != nil {
				fmt.Printf("replica %d: snapshot unavailable (%v) — skipping\n", rid, err)
				continue
			}
			accs, err := core.DecodeAuditAccounts(snap)
			if err != nil {
				return fmt.Errorf("replica %d: decode snapshot: %w", rid, err)
			}
			exports[rid] = accs
			fmt.Printf("replica %d: snapshot fetched (%d accounts)\n", rid, len(accs))
		}
		if len(exports) == 0 {
			return fmt.Errorf("no replica answered a snapshot request (nodes need -data-dir)")
		}
		violations := sim.AuditExports(v, types.Amount(*genesis), exports)
		if len(violations) == 0 {
			fmt.Printf("audit clean: %d replicas, all invariants hold\n", len(exports))
			return nil
		}
		for _, viol := range violations {
			fmt.Println("VIOLATION", viol)
		}
		return fmt.Errorf("%d invariant violations", len(violations))
	default:
		return fmt.Errorf("unknown command %q", flag.Arg(0))
	}
}

func parsePeers(s string) (map[transport.NodeID]string, []types.ReplicaID, error) {
	if s == "" {
		return nil, nil, fmt.Errorf("-peers is required")
	}
	peers := make(map[transport.NodeID]string)
	var ids []types.ReplicaID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		peers[transport.NodeID(id)] = kv[1]
		ids = append(ids, types.ReplicaID(id))
	}
	return peers, ids, nil
}
