// Command astro-client drives an Astro deployment started with
// cmd/astro-node, submitting payments and querying balances over TCP.
//
//	astro-client -id 1 -peers 0=127.0.0.1:7000,...  balance
//	astro-client -id 1 -peers ...  pay -to 2 -amount 50 -count 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"astro/internal/core"
	"astro/internal/transport"
	"astro/internal/transport/tcpnet"
	"astro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "astro-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id    = flag.Uint64("id", 1, "this client's identity")
		peers = flag.String("peers", "", "comma-separated id=host:port for every replica")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: astro-client [flags] {pay|balance} [command flags]")
	}

	peerMap, ids, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	ep, err := tcpnet.New(tcpnet.Config{
		Self:  transport.ClientNode(types.ClientID(*id)),
		Peers: peerMap,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	mux := transport.NewMux(ep)

	repOf := func(c types.ClientID) types.ReplicaID {
		return ids[uint64(c)%uint64(len(ids))]
	}
	client := core.NewClient(types.ClientID(*id), repOf, mux)

	switch flag.Arg(0) {
	case "pay":
		fs := flag.NewFlagSet("pay", flag.ContinueOnError)
		to := fs.Uint64("to", 2, "beneficiary client id")
		amount := fs.Uint64("amount", 1, "amount per payment")
		count := fs.Int("count", 1, "number of payments")
		timeout := fs.Duration("timeout", 10*time.Second, "per-payment confirmation timeout")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			return err
		}
		// The client process is stateless across runs: resync the sequence
		// counter from the replica so a restart does not reuse identifiers
		// that already settled (those payments would silently never settle).
		next, err := client.SyncSeq(*timeout)
		if err != nil {
			return fmt.Errorf("sync seq: %w", err)
		}
		if next > 1 {
			fmt.Printf("resuming at seq %d\n", next)
		}
		start := time.Now()
		for i := 0; i < *count; i++ {
			pid, err := client.Pay(types.ClientID(*to), types.Amount(*amount))
			if err != nil {
				return fmt.Errorf("pay: %w", err)
			}
			if err := client.WaitConfirm(pid, *timeout); err != nil {
				return fmt.Errorf("payment %v: %w", pid, err)
			}
			fmt.Printf("settled %v: %d -> %d amount %d\n", pid, *id, *to, *amount)
		}
		elapsed := time.Since(start)
		fmt.Printf("%d payments in %v (%.1f pps)\n", *count, elapsed.Round(time.Millisecond),
			float64(*count)/elapsed.Seconds())
		return nil
	case "balance":
		bal, err := client.QueryBalance(10 * time.Second)
		if err != nil {
			return fmt.Errorf("balance: %w", err)
		}
		fmt.Printf("client %d balance: %d\n", *id, bal)
		return nil
	default:
		return fmt.Errorf("unknown command %q", flag.Arg(0))
	}
}

func parsePeers(s string) (map[transport.NodeID]string, []types.ReplicaID, error) {
	if s == "" {
		return nil, nil, fmt.Errorf("-peers is required")
	}
	peers := make(map[transport.NodeID]string)
	var ids []types.ReplicaID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		peers[transport.NodeID(id)] = kv[1]
		ids = append(ids, types.ReplicaID(id))
	}
	return peers, ids, nil
}
