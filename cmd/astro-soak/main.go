// Command astro-soak is the long-running survival harness: a durable
// N-replica Astro II deployment (N >= 7, WAL-backed, client signatures
// on) driven for minutes under the full fault palette at once —
// randomized kill -9/WAL-restart cycles, a rotating Byzantine replica
// behavior on a fixed faulty seat, a Byzantine client storming the
// payment edge, and seeded network chaos — while the invariant auditor
// samples consistent state cuts the whole time.
//
//	astro-soak -duration 2m
//	astro-soak -duration 30m -n 10 -clients 16 -seed 7 \
//	    -chaos 'drop=0.02,dup=0.01,delay=200us-2ms' -kill-every 10s
//
// The run ends with a convergence window (faults disarmed, chaos healed,
// anti-entropy, final audit pass + quiescent conservation check) and a
// summary; exit status 1 if any invariant was ever violated, the final
// quiescent check fails, or honest clients made no progress. This is a
// harness, not a CI test — `make soak` runs it; CI runs the bounded
// `make chaos-smoke-tcp` instead.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"astro/internal/core"
	"astro/internal/shard"
	"astro/internal/sim"
	"astro/internal/transport/chaos"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "astro-soak:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration  = flag.Duration("duration", 2*time.Minute, "soak duration (excluding the convergence window)")
		n         = flag.Int("n", 7, "replica count (>= 7 so f >= 2: one Byzantine seat plus a crash victim)")
		clients   = flag.Int("clients", 8, "honest client count")
		seed      = flag.Uint64("seed", 1, "seed for chaos, kill scheduling, and network jitter")
		killEvery = flag.Duration("kill-every", 15*time.Second, "cadence of kill -9/restart cycles (0 disables)")
		chaosRule = flag.String("chaos", "drop=0.01,dup=0.01,delay=200us-1ms", "chaos default rule (empty disables)")
		rotate    = flag.Duration("rotate", 20*time.Second, "Byzantine behavior rotation cadence on the faulty seat")
		sample    = flag.Duration("sample", 100*time.Millisecond, "auditor sampling interval")
		dataDir   = flag.String("data-dir", "", "WAL directory (default: a fresh temp dir)")
	)
	flag.Parse()
	if *n < 7 {
		return fmt.Errorf("-n must be >= 7 (f >= 2), got %d", *n)
	}

	dir := *dataDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "astro-soak-*"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	var ctrl *chaos.Controller
	if *chaosRule != "" {
		rule, err := chaos.ParseRule(*chaosRule)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		prof := chaos.Profile{Seed: *seed, Default: rule}
		var stopChaos func()
		ctrl, stopChaos = prof.Start()
		defer stopChaos()
	}

	c, err := sim.NewAstroCluster(sim.AstroOpts{
		Version:          core.AstroII,
		Topology:         shard.Topology{NumShards: 1, PerShard: *n},
		Latency:          memnet.Uniform(200*time.Microsecond, 2*time.Millisecond),
		BatchSize:        64,
		BatchDelay:       2 * time.Millisecond,
		Seed:             *seed,
		DataDir:          dir,
		WALSnapshotEvery: 64,
		Chaos:            ctrl,
		ClientAuth:       true,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// The fixed Byzantine seat: the highest replica id, excluded from the
	// audit (the paper's claims quantify over correct replicas) and from
	// the kill rotation (its behavior should stay armed, not crash).
	byzSeat := types.ReplicaID(*n - 1)
	kinds := []sim.FaultKind{
		sim.FaultEquivocate, sim.FaultWithholdCommits, sim.FaultForgeRefs,
		sim.FaultNackStorm, sim.FaultStaleView,
	}

	// Audit every account that ever holds money: honest clients, the
	// hostile client, and the storm's beneficiaries (already honest ids).
	hostileID := types.ClientID(*clients + 1)
	auditIDs := make([]types.ClientID, 0, *clients+1)
	for i := 1; i <= *clients; i++ {
		auditIDs = append(auditIDs, types.ClientID(i))
	}
	auditIDs = append(auditIDs, hostileID)
	aud := c.NewAuditor(sim.AuditorConfig{
		Clients:       auditIDs,
		Genesis:       1 << 40,
		Faulty:        map[types.ReplicaID]bool{byzSeat: true},
		Interval:      *sample,
		MaxViolations: 128,
	})

	// Hostile client: seed settled history, then storm the edge for the
	// whole run.
	hostile := c.Hostile(hostileID)
	settled, frame, err := hostile.SettleOne(1, 5, 30*time.Second)
	if err != nil {
		return fmt.Errorf("hostile seed payment: %w", err)
	}

	fmt.Printf("astro-soak: n=%d f=%d byz-seat=%d clients=%d hostile=%d chaos=%q kill-every=%v duration=%v dir=%s\n",
		*n, (*n-1)/3, byzSeat, *clients, hostileID, *chaosRule, *killEvery, *duration, dir)

	aud.Start()
	stop := make(chan struct{})
	go hostile.Storm(stop, settled, frame)

	// Honest load: every client loops hardened payments. A gave-up
	// payment is tolerated (the representative may be mid-restart); the
	// per-client settled counters in the summary show who progressed.
	done := make(chan types.ClientID, *clients)
	counts := make([]uint64, *clients+1)
	for i := 1; i <= *clients; i++ {
		cl := c.Client(types.ClientID(i))
		ben := types.ClientID(i%*clients + 1)
		idx := i
		go func() {
			defer func() { done <- types.ClientID(idx) }()
			pol := core.RetryPolicy{Attempts: 20, Timeout: 2 * time.Second, Resync: true}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.PayReliable(ben, 1, pol); err == nil {
					counts[idx]++
				}
			}
		}()
	}

	// Fault driver: rotate the Byzantine behavior and run kill/restart
	// cycles against random correct replicas, one at a time.
	rng := rand.New(rand.NewSource(int64(*seed)))
	var kills, rotations int
	rotateT := time.NewTicker(*rotate)
	defer rotateT.Stop()
	killT := time.NewTicker(maxDur(*killEvery, time.Second))
	defer killT.Stop()
	if *killEvery <= 0 {
		killT.Stop()
	}
	end := time.After(*duration)
	if err := c.ArmFault(byzSeat, kinds[0]); err != nil {
		return err
	}
	rotations++

loop:
	for {
		select {
		case <-end:
			break loop
		case <-rotateT.C:
			if err := c.ArmFault(byzSeat, kinds[rotations%len(kinds)]); err != nil {
				return err
			}
			rotations++
		case <-killT.C:
			if *killEvery <= 0 {
				continue
			}
			// Never the Byzantine seat, never two at once: safety claims
			// assume at most f faults, and the seat already burns one.
			victim := types.ReplicaID(rng.Intn(*n - 1))
			if c.Crashed(victim) {
				continue
			}
			c.Kill(victim)
			kills++
			outage := time.Duration(500+rng.Intn(2000)) * time.Millisecond
			time.Sleep(outage)
			if err := c.Restart(victim); err != nil {
				return fmt.Errorf("restart replica %d: %w", victim, err)
			}
		}
	}

	// Convergence window: disarm everything, heal the network, then run
	// anti-entropy rounds until every unit of genesis is spendable again
	// (credits drain asynchronously — in-flight CREDIT certificates and
	// restart catch-up take a few round trips to reconcile).
	close(stop)
	for i := 0; i < *clients; i++ {
		<-done
	}
	_ = c.SetBehavior(byzSeat, nil)
	if ctrl != nil {
		ctrl.Reset()
	}
	// The byzSeat participates in the rounds: its *state* was always
	// honest (behaviors only corrupt frames in flight), and clients it
	// represents need it to reconcile their stranded credits.
	antiEntropyRound := func() error {
		for _, id := range c.ReplicaIDs() {
			if c.Crashed(id) {
				continue
			}
			for _, donor := range c.ReplicaIDs() {
				if donor != id && !c.Crashed(donor) {
					if err := c.AntiEntropy(id, donor); err != nil {
						return fmt.Errorf("anti-entropy %d<-%d: %w", id, donor, err)
					}
				}
			}
		}
		return nil
	}
	var quiescentErr error
	convergeBy := time.Now().Add(60 * time.Second)
	for {
		if quiescentErr = aud.CheckQuiescent(); quiescentErr == nil {
			break
		}
		if time.Now().After(convergeBy) {
			break
		}
		if err := antiEntropyRound(); err != nil {
			return err
		}
		time.Sleep(250 * time.Millisecond)
	}
	report := aud.Stop()

	// ---- summary ----
	var totalPaid uint64
	fmt.Println("=== astro-soak summary ===")
	fmt.Printf("kills=%d behavior-rotations=%d hostile-volleys=%d\n",
		kills, rotations, hostile.Volleys.Load())
	for i := 1; i <= *clients; i++ {
		totalPaid += counts[i]
	}
	fmt.Printf("honest payments settled: %d across %d clients\n", totalPaid, *clients)
	var edge core.EdgeStats
	ids := c.ReplicaIDs()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		if r := c.Replica(id); r != nil {
			edge.Add(r.EdgeStats())
			fmt.Printf("replica %d: settled=%d edge-rejections=%d\n",
				id, r.SettledCount(), r.EdgeStats().Total())
		}
	}
	fmt.Printf("edge totals: %+v\n", edge)
	fmt.Printf("auditor: %d samples, %d violations (truncated=%v)\n",
		report.Samples, len(report.Violations), report.Truncated)
	for _, v := range report.Violations {
		fmt.Println("VIOLATION", v)
	}
	if quiescentErr != nil {
		fmt.Println("QUIESCENT CHECK FAILED:", quiescentErr)
	} else {
		fmt.Println("quiescent conservation: ok")
	}

	switch {
	case len(report.Violations) > 0:
		return fmt.Errorf("%d invariant violations", len(report.Violations))
	case quiescentErr != nil:
		return quiescentErr
	case totalPaid == 0:
		return fmt.Errorf("no honest payment settled during the soak")
	}
	fmt.Println("astro-soak: survived")
	return nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
