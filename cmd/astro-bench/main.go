// Command astro-bench regenerates every table and figure of the paper's
// evaluation (§VI and Appendix A) on the in-process simulated network.
//
// Usage:
//
//	astro-bench [flags] <experiment>
//
// Experiments:
//
//	fig3    throughput vs system size (Astro I, Astro II, consensus)
//	fig4    latency vs throughput at fixed N
//	table1  sharded Smallbank benchmark (Astro II + consensus bound)
//	fig5    throughput timeline under a crash-stop failure (N=49)
//	fig6    throughput timeline under asynchrony (N=49)
//	fig7    crash + asynchrony at N=100
//	fig8    reconfiguration join latency, growing 4 -> 80
//	all     run everything
//
// The -fast flag shrinks system sizes and durations for a quick pass on a
// laptop; absolute numbers shrink accordingly, the comparative shapes
// remain.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"astro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "astro-bench:", err)
		os.Exit(1)
	}
}

type options struct {
	fast       bool
	duration   time.Duration
	clients    int
	sizes      string
	window     time.Duration
	realCrypto bool
	n          int
	endN       int
	seed       uint64
}

func run(args []string) error {
	fs := flag.NewFlagSet("astro-bench", flag.ContinueOnError)
	opt := options{}
	fs.BoolVar(&opt.fast, "fast", false, "shrink sizes and durations for a quick pass")
	fs.DurationVar(&opt.duration, "duration", 0, "duration per measurement point (0 = experiment default)")
	fs.IntVar(&opt.clients, "clients", 0, "closed-loop clients per point (0 = default)")
	fs.StringVar(&opt.sizes, "sizes", "", "comma-separated system sizes for fig3 (e.g. 4,10,22)")
	fs.DurationVar(&opt.window, "window", 0, "observation window for fig5-fig7 (0 = default)")
	fs.BoolVar(&opt.realCrypto, "realcrypto", false, "use real ECDSA in the harness instead of simulated authenticators")
	fs.IntVar(&opt.n, "n", 0, "system size for fig4-fig7 (0 = paper default)")
	fs.IntVar(&opt.endN, "endn", 0, "final system size for fig8 (0 = paper default 80)")
	var seed uint64
	fs.Uint64Var(&seed, "seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt.seed = seed
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one experiment, got %d args", fs.NArg())
	}
	exp := fs.Arg(0)
	switch exp {
	case "fig3":
		return fig3(opt)
	case "fig4":
		return fig4(opt)
	case "table1":
		return table1(opt)
	case "fig5":
		return fig5(opt)
	case "fig6":
		return fig6(opt)
	case "fig7":
		return fig7(opt)
	case "fig8":
		return fig8(opt)
	case "all":
		for _, f := range []func(options) error{fig3, fig4, table1, fig5, fig6, fig7, fig8} {
			if err := f(opt); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fig3(opt options) error {
	sizes, err := parseSizes(opt.sizes)
	if err != nil {
		return err
	}
	cfg := sim.Fig3Config{Sizes: sizes, Duration: opt.duration, Clients: opt.clients, RealCrypto: opt.realCrypto, Seed: opt.seed}
	if opt.fast {
		if cfg.Sizes == nil {
			cfg.Sizes = []int{4, 10, 16}
		}
		if cfg.Duration == 0 {
			cfg.Duration = 2 * time.Second
		}
		if cfg.Clients == 0 {
			cfg.Clients = 32
		}
	}
	fmt.Println("== Figure 3: peak throughput vs system size ==")
	fmt.Printf("%-14s %6s %14s %12s %12s\n", "system", "N", "tput (pps)", "avg lat", "p95 lat")
	res, err := sim.Fig3(cfg)
	for _, m := range res {
		fmt.Printf("%-14s %6d %14.0f %12v %12v\n",
			m.System, m.N, m.Throughput,
			m.AvgLatency.Round(time.Millisecond), m.P95Latency.Round(time.Millisecond))
	}
	return err
}

func fig4(opt options) error {
	cfg := sim.Fig4Config{N: opt.n, Duration: opt.duration, RealCrypto: opt.realCrypto, Seed: opt.seed}
	if opt.fast {
		if cfg.N == 0 {
			cfg.N = 10
		}
		cfg.ClientCounts = []int{2, 8, 32}
		if cfg.Duration == 0 {
			cfg.Duration = 2 * time.Second
		}
	}
	n := cfg.N
	if n == 0 {
		n = 100
	}
	fmt.Printf("== Figure 4: latency vs throughput at N=%d ==\n", n)
	fmt.Printf("%-14s %8s %14s %12s %12s %12s\n", "system", "clients", "tput (pps)", "avg lat", "p95 lat", "p99 lat")
	res, err := sim.Fig4(cfg)
	for _, m := range res {
		fmt.Printf("%-14s %8d %14.0f %12v %12v %12v\n",
			m.System, m.Clients, m.Throughput,
			m.AvgLatency.Round(time.Millisecond), m.P95Latency.Round(time.Millisecond),
			m.P99Latency.Round(time.Millisecond))
	}
	return err
}

func table1(opt options) error {
	cfg := sim.Table1Config{Duration: opt.duration, IncludeBaseline: true, RealCrypto: opt.realCrypto, Seed: opt.seed}
	if opt.n > 0 {
		cfg.PerShard = opt.n
	}
	if opt.clients > 0 {
		cfg.OwnersPerShard = opt.clients
	}
	if opt.fast {
		cfg.ShardCounts = []int{2, 3}
		if cfg.PerShard == 0 {
			cfg.PerShard = 7
		}
		if cfg.OwnersPerShard == 0 {
			cfg.OwnersPerShard = 8
		}
		if cfg.Duration == 0 {
			cfg.Duration = 2 * time.Second
		}
	}
	per := cfg.PerShard
	if per == 0 {
		per = 52
	}
	fmt.Printf("== Table I: Smallbank sharded benchmark (N=%d per shard) ==\n", per)
	fmt.Printf("%-11s %7s %9s %16s %14s %10s %10s %8s\n",
		"system", "shards", "tc delay", "per-shard (pps)", "total (pps)", "avg lat", "p95 lat", "cross%")
	rows, err := sim.Table1(cfg)
	for _, r := range rows {
		fmt.Printf("%-11s %7d %9v %16.0f %14.0f %10v %10v %7.1f%%\n",
			r.System, r.Shards, r.ExtraDelay, r.PerShardTput, r.TotalTput,
			r.AvgLatency.Round(time.Millisecond), r.P95Latency.Round(time.Millisecond),
			100*r.CrossFraction)
	}
	if err == nil {
		fmt.Println("note: consensus rows are optimistic upper bounds from a single-shard run,")
		fmt.Println("      scaled by the shard count with no cross-shard coordination charged (as in the paper).")
	}
	return err
}

// timelineDefaults applies the shared fig5-7 settings.
func timelineDefaults(opt options, paperN int) (window, faultAt time.Duration, size, clients int) {
	window = 20 * time.Second
	if opt.window > 0 {
		window = opt.window
	}
	size = paperN
	if opt.n > 0 {
		size = opt.n
	}
	clients = 10
	if opt.fast {
		window = 6 * time.Second
		if opt.window > 0 {
			window = opt.window
		}
		if opt.n == 0 {
			size = 10
		}
	}
	faultAt = window / 2
	return window, faultAt, size, clients
}

func printTimeline(res sim.TimelineResult) {
	fmt.Printf("%-28s", res.Label)
	for _, r := range res.Rates {
		fmt.Printf(" %5.0f", r)
	}
	if res.ViewChanges > 0 {
		fmt.Printf("   (view changes: %d)", res.ViewChanges)
	}
	fmt.Println()
}

func fig5(opt options) error {
	window, faultAt, n, clients := timelineDefaults(opt, 49)
	fmt.Printf("== Figure 5: crash-stop failure at t=%v (N=%d, pps per %v bin) ==\n", faultAt, n, time.Second)
	runs := []sim.TimelineConfig{
		{System: sim.SystemConsensus, Target: sim.TargetLeader, Fault: sim.FaultCrash},
		{System: sim.SystemConsensus, Target: sim.TargetRandom, Fault: sim.FaultCrash},
		{System: sim.SystemAstroI, Target: sim.TargetRandom, Fault: sim.FaultCrash},
	}
	return runTimelines(runs, n, clients, window, faultAt, opt)
}

func fig6(opt options) error {
	window, faultAt, n, clients := timelineDefaults(opt, 49)
	fmt.Printf("== Figure 6: asynchrony (100ms delay) at t=%v (N=%d) ==\n", faultAt, n)
	runs := []sim.TimelineConfig{
		// Leader-A: loose timeout, degradation persists without a view change.
		{System: sim.SystemConsensus, Target: sim.TargetLeader, Fault: sim.FaultDelay,
			RequestTimeout: window * 4},
		// Leader-B: tight timeout, a view change replaces the slow leader.
		// The timeout must sit between the healthy (~100ms) and the
		// delay-inflated (~200ms) request latency for the suspicion to
		// fire — the paper's view-change timeout tradeoff (§VI-D): too
		// aggressive risks spurious view changes in good conditions.
		{System: sim.SystemConsensus, Target: sim.TargetLeader, Fault: sim.FaultDelay,
			RequestTimeout: 150 * time.Millisecond, ViewChangeSyncCost: 300 * time.Millisecond},
		{System: sim.SystemConsensus, Target: sim.TargetRandom, Fault: sim.FaultDelay},
		{System: sim.SystemAstroI, Target: sim.TargetRandom, Fault: sim.FaultDelay},
	}
	return runTimelines(runs, n, clients, window, faultAt, opt)
}

func fig7(opt options) error {
	window, faultAt, n, clients := timelineDefaults(opt, 100)
	fmt.Printf("== Figure 7: crash or asynchrony at t=%v (N=%d) ==\n", faultAt, n)
	runs := []sim.TimelineConfig{
		{System: sim.SystemConsensus, Target: sim.TargetLeader, Fault: sim.FaultCrash},
		{System: sim.SystemConsensus, Target: sim.TargetLeader, Fault: sim.FaultDelay,
			RequestTimeout: window * 4},
		{System: sim.SystemAstroI, Target: sim.TargetRandom, Fault: sim.FaultCrash},
		{System: sim.SystemAstroI, Target: sim.TargetRandom, Fault: sim.FaultDelay},
	}
	return runTimelines(runs, n, clients, window, faultAt, opt)
}

func runTimelines(runs []sim.TimelineConfig, n, clients int, window, faultAt time.Duration, opt options) error {
	for _, cfg := range runs {
		cfg.N = n
		cfg.Clients = clients
		cfg.Window = window
		cfg.FaultAt = faultAt
		cfg.Seed = opt.seed
		res, err := sim.Timeline(cfg)
		if err != nil {
			return err
		}
		printTimeline(res)
	}
	fmt.Printf("(fault injected after bin %d)\n", int(faultAt/time.Second))
	return nil
}

func fig8(opt options) error {
	cfg := sim.Fig8Config{StateClients: 100, StatePayments: 10, EndN: opt.endN, Seed: opt.seed}
	if opt.fast && cfg.EndN == 0 {
		cfg.StartN = 4
		cfg.EndN = 16
	}
	end := cfg.EndN
	if end == 0 {
		end = 80
	}
	fmt.Printf("== Figure 8: reconfiguration join latency, growing to N=%d ==\n", end)
	points, err := sim.Fig8(cfg)
	fmt.Printf("%-11s %6s %14s\n", "system", "N", "join latency")
	for _, p := range points {
		fmt.Printf("%-11s %6d %14v\n", p.System, p.N, p.Latency.Round(time.Millisecond))
	}
	return err
}
