// Package astro is a decentralized payment system that avoids consensus:
// payments execute by merely broadcasting messages through Byzantine
// reliable broadcast, as described in "Online Payments by Merely
// Broadcasting Messages" (DSN 2020).
//
// The package is the public facade over the implementation packages:
//
//   - internal/core — exclusive logs, the approve/settle engine, the two
//     Astro variants (echo-based Astro I, signature-based Astro II with
//     CREDIT dependency certificates), representatives, batching, clients;
//   - internal/brb — the two Byzantine reliable broadcast protocols;
//   - internal/shard — asynchronous sharding topology;
//   - internal/consensus — a PBFT-style baseline for comparison;
//   - internal/reconfig — consensus-free membership reconfiguration;
//   - internal/sim, internal/workload, internal/metrics — the experiment
//     harness reproducing the paper's evaluation.
//
// The quickest way to a running system is New, which deploys replicas
// over an in-process simulated network:
//
//	sys, err := astro.New(astro.Options{Replicas: 4, Genesis: 1000})
//	if err != nil { ... }
//	defer sys.Close()
//	alice := sys.Client(1)
//	id, _ := alice.Pay(2, 100)
//	_ = alice.WaitConfirm(id, 5*time.Second)
//
// Multi-process deployments over TCP use cmd/astro-node and
// cmd/astro-client.
package astro

import (
	"fmt"
	"time"

	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/shard"
	"astro/internal/sim"
	"astro/internal/transport/chaos"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// Re-exported identifier and value types.
type (
	// ClientID identifies a client (the owner of one exclusive log).
	ClientID = types.ClientID
	// ReplicaID identifies a replica.
	ReplicaID = types.ReplicaID
	// Amount is a non-negative quantity of funds.
	Amount = types.Amount
	// Seq is a client-assigned sequence number within an exclusive log.
	Seq = types.Seq
	// PaymentID is the pair (spender, sequence number).
	PaymentID = types.PaymentID
	// Payment is one transfer recorded in the spender's exclusive log.
	Payment = types.Payment
	// Client submits payments to its representative and receives
	// settlement confirmations.
	Client = core.Client
	// RetryPolicy tunes Client.PayReliable, the hardened submit loop
	// (idempotent resubmission with jittered backoff and seq resync).
	RetryPolicy = core.RetryPolicy
	// Replica is one node of an Astro deployment.
	Replica = core.Replica
	// Version selects between the paper's two system variants.
	Version = core.Version
	// Topology partitions replicas into shards.
	Topology = shard.Topology
)

// The two system variants.
const (
	// AstroI uses Bracha's echo-based broadcast (MACs, O(N²), totality).
	AstroI = core.AstroI
	// AstroII uses signature-based broadcast (O(N), dependency
	// certificates, sharding support). The default.
	AstroII = core.AstroII
)

// Options configures an embedded deployment.
type Options struct {
	// Version selects Astro I or Astro II. Default AstroII.
	Version Version
	// Replicas is the replica count for a single-shard deployment.
	// Ignored if Shards is set. Default 4.
	Replicas int
	// Shards configures a sharded deployment (Astro II only).
	Shards Topology
	// Genesis is every client's initial balance.
	Genesis Amount
	// BatchSize caps payments per broadcast batch. Default 256.
	BatchSize int
	// BatchDelay bounds batching latency. Default 5ms.
	BatchDelay time.Duration
	// LinkLatency sets a fixed one-way link latency between replicas.
	// Zero means instant links (fastest; useful for tests). Use
	// WANLatency for the paper's multi-region profile.
	LinkLatency time.Duration
	// WANLatency applies the paper's European multi-region latency
	// profile (~20ms inter-region RTT), overriding LinkLatency.
	WANLatency bool
	// DataDir, when set, makes every replica durable: each keeps an
	// append-only WAL plus compacted snapshots under DataDir/rep<id> and
	// survives Kill + Restart (kill -9 semantics). Empty means
	// memory-only replicas, for which Crash is permanent.
	DataDir string
	// StateCacheAccounts bounds the accounts each replica keeps resident
	// in memory: cold accounts page to an embedded KV store in the
	// replica's data directory and fault back in on access, and WAL
	// snapshots become incremental. Requires DataDir. 0 — the default —
	// keeps every account resident.
	StateCacheAccounts int
	// Chaos, when set, interposes a seeded chaos controller on every
	// link: probabilistic drop, corruption, duplication, reordering, and
	// extra delay, reproducible from the profile's seed. See fault.go for
	// the rest of the robustness surface.
	Chaos *ChaosProfile
}

// System is an embedded Astro deployment: replicas over an in-process
// network, with real ECDSA keys, ready to serve clients.
type System struct {
	cluster   *sim.AstroCluster
	topology  Topology
	genesis   Amount
	chaos     *chaos.Controller
	stopChaos func() // cancels unfired chaos schedule phases
}

// New deploys a system.
func New(opts Options) (*System, error) {
	if opts.Version == 0 {
		opts.Version = AstroII
	}
	top := opts.Shards
	if top.NumShards == 0 {
		n := opts.Replicas
		if n == 0 {
			n = 4
		}
		top = Topology{NumShards: 1, PerShard: n}
	}
	if top.NumShards > 1 && opts.Version != AstroII {
		return nil, fmt.Errorf("astro: sharding requires Astro II")
	}
	var latency memnet.LatencyModel
	switch {
	case opts.WANLatency:
		latency = memnet.EuropeWAN()
	case opts.LinkLatency > 0:
		latency = memnet.Fixed(opts.LinkLatency)
	default:
		latency = memnet.Fixed(0)
	}
	var ctrl *chaos.Controller
	stopChaos := func() {}
	if p := opts.Chaos; p != nil {
		prof := chaos.Profile{
			Seed: p.Seed,
			Default: chaos.Rule{
				Drop:      p.Drop,
				Corrupt:   p.Corrupt,
				Duplicate: p.Duplicate,
				Reorder:   p.Reorder,
				DelayMin:  p.DelayMin,
				DelayMax:  p.DelayMax,
			},
		}
		if p.Rule != "" {
			rule, err := chaos.ParseRule(p.Rule)
			if err != nil {
				return nil, fmt.Errorf("astro: chaos rule: %w", err)
			}
			prof.Default = rule
		}
		if p.Schedule != "" {
			sch, err := chaos.ParseSchedule(p.Schedule)
			if err != nil {
				return nil, fmt.Errorf("astro: chaos schedule: %w", err)
			}
			prof.Schedule = sch
		}
		ctrl, stopChaos = prof.Start()
	}
	if opts.StateCacheAccounts > 0 && opts.DataDir == "" {
		stopChaos()
		return nil, fmt.Errorf("astro: StateCacheAccounts requires DataDir")
	}
	cluster, err := sim.NewAstroCluster(sim.AstroOpts{
		Version:            opts.Version,
		Topology:           top,
		Latency:            latency,
		BatchSize:          opts.BatchSize,
		BatchDelay:         opts.BatchDelay,
		Genesis:            opts.Genesis,
		Bandwidth:          -1,   // embedded systems are not bandwidth-simulated
		RealCrypto:         true, // the library always uses real ECDSA
		DataDir:            opts.DataDir,
		StateCacheAccounts: opts.StateCacheAccounts,
		Chaos:              ctrl,
	})
	if err != nil {
		stopChaos()
		return nil, fmt.Errorf("astro: %w", err)
	}
	return &System{cluster: cluster, topology: top, genesis: opts.Genesis,
		chaos: ctrl, stopChaos: stopChaos}, nil
}

// Client returns the client with the given identity, creating it on first
// use. Not safe for concurrent first-use of the same id.
func (s *System) Client(id ClientID) *Client { return s.cluster.Client(id) }

// Replica returns a replica handle (for balance inspection and audit).
func (s *System) Replica(id ReplicaID) *Replica { return s.cluster.Replicas[id] }

// Replicas returns all replica identities.
func (s *System) Replicas() []ReplicaID { return s.topology.AllReplicas() }

// Topology returns the deployment's shard topology.
func (s *System) Topology() Topology { return s.topology }

// RepresentativeOf returns the replica brokering a client's payments.
func (s *System) RepresentativeOf(id ClientID) ReplicaID { return s.cluster.RepOf(id) }

// Balance returns a client's spendable balance as seen by its
// representative (settled funds plus pending dependency certificates).
func (s *System) Balance(id ClientID) Amount {
	return s.cluster.Replicas[s.cluster.RepOf(id)].Balance(id)
}

// Audit returns a copy of a client's exclusive log from the given replica
// and whether it is internally consistent.
func (s *System) Audit(replica ReplicaID, client ClientID) ([]Payment, bool) {
	r := s.cluster.Replicas[replica]
	if r == nil {
		return nil, false
	}
	log := r.XLogSnapshot(client)
	for i, p := range log {
		if p.Spender != client || p.Seq != Seq(i+1) {
			return log, false
		}
	}
	return log, true
}

// Crash crash-stops a replica (fault injection).
func (s *System) Crash(id ReplicaID) { s.cluster.Crash(id) }

// Kill crash-stops a replica with kill -9 semantics: no flush, no
// goodbye — whatever its WAL had synced is all that survives. Requires
// Options.DataDir for the replica to be restartable.
func (s *System) Kill(id ReplicaID) { s.cluster.Kill(id) }

// Restart brings a killed replica back from its on-disk state: WAL
// replay, then catch-up from live peers (state fetch plus CREDIT
// re-request for certificates lost while down). Errors without
// Options.DataDir.
func (s *System) Restart(id ReplicaID) error { return s.cluster.Restart(id) }

// AntiEntropy folds donor's full state into replica id — the idempotent
// catch-up step, useful to close the window between a restarted
// replica's peer fetch and its resubscription to live traffic.
func (s *System) AntiEntropy(id, donor ReplicaID) error { return s.cluster.AntiEntropy(id, donor) }

// DelayReplica injects extra outbound delay at a replica (asynchrony
// injection, like `tc netem delay`).
func (s *System) DelayReplica(id ReplicaID, d time.Duration) { s.cluster.Delay(id, d) }

// Close shuts the system down.
func (s *System) Close() {
	if s.stopChaos != nil {
		s.stopChaos()
	}
	s.cluster.Close()
}

// GenerateKeyPair creates an ECDSA P-256 key pair, exposed for callers
// assembling custom deployments with the internal packages.
func GenerateKeyPair() (*crypto.KeyPair, error) { return crypto.GenerateKeyPair() }
