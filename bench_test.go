package astro

// One benchmark per table/figure of the paper's evaluation (§VI and
// Appendix A), scaled to run quickly under `go test -bench`. The full
// parameter sweeps (larger N, longer windows, all cells) are produced by
// cmd/astro-bench; these benches regenerate each artifact's core
// measurement and report it as custom metrics, so `go test -bench=.
// -benchmem` gives a one-screen summary of the whole evaluation.
//
// Metric conventions: pps = confirmed payments/sec; ms metrics are
// latencies; joinms = reconfiguration join latency.

import (
	"testing"
	"time"

	"astro/internal/sim"
)

// benchMeasurePoint runs one fig3/fig4-style measurement per benchmark
// iteration and reports throughput and latency.
func benchMeasurePoint(b *testing.B, system sim.System, n, clients int) {
	b.Helper()
	var tput, avg, p95 float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig3(sim.Fig3Config{
			Sizes:    []int{n},
			Systems:  []sim.System{system},
			Duration: 400 * time.Millisecond,
			Clients:  clients,
			Seed:     uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		m := res[0]
		tput += m.Throughput
		avg += float64(m.AvgLatency.Milliseconds())
		p95 += float64(m.P95Latency.Milliseconds())
	}
	b.ReportMetric(tput/float64(b.N), "pps")
	b.ReportMetric(avg/float64(b.N), "avg_ms")
	b.ReportMetric(p95/float64(b.N), "p95_ms")
}

// Figure 3 — peak throughput vs system size (one point per system).
func BenchmarkFig3AstroI(b *testing.B)    { benchMeasurePoint(b, sim.SystemAstroI, 4, 32) }
func BenchmarkFig3AstroII(b *testing.B)   { benchMeasurePoint(b, sim.SystemAstroII, 4, 32) }
func BenchmarkFig3Consensus(b *testing.B) { benchMeasurePoint(b, sim.SystemConsensus, 4, 32) }

// Figure 4 — latency/throughput at larger N (one load point per system).
func BenchmarkFig4AstroI(b *testing.B)    { benchMeasurePoint(b, sim.SystemAstroI, 10, 16) }
func BenchmarkFig4AstroII(b *testing.B)   { benchMeasurePoint(b, sim.SystemAstroII, 10, 16) }
func BenchmarkFig4Consensus(b *testing.B) { benchMeasurePoint(b, sim.SystemConsensus, 10, 16) }

// Table I — sharded Smallbank (2 shards) plus the consensus upper bound.
func BenchmarkTable1Smallbank(b *testing.B) {
	var total, perShard, cross float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Table1(sim.Table1Config{
			ShardCounts:    []int{2},
			PerShard:       4,
			ExtraDelays:    []time.Duration{0},
			OwnersPerShard: 8,
			Duration:       500 * time.Millisecond,
			BatchSize:      64,
			Seed:           uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		total += rows[0].TotalTput
		perShard += rows[0].PerShardTput
		cross += rows[0].CrossFraction
	}
	b.ReportMetric(total/float64(b.N), "tps")
	b.ReportMetric(perShard/float64(b.N), "tps_per_shard")
	b.ReportMetric(100*cross/float64(b.N), "cross_pct")
}

func BenchmarkTable1ConsensusBound(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Table1(sim.Table1Config{
			ShardCounts:     []int{2},
			PerShard:        4,
			ExtraDelays:     []time.Duration{0},
			OwnersPerShard:  8,
			Duration:        500 * time.Millisecond,
			BatchSize:       64,
			IncludeBaseline: true,
			Seed:            uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		total += rows[len(rows)-1].TotalTput
	}
	b.ReportMetric(total/float64(b.N), "tps_upper_bound")
}

// benchTimeline runs one robustness timeline per iteration and reports
// pre-fault and post-fault throughput.
func benchTimeline(b *testing.B, cfg sim.TimelineConfig) {
	b.Helper()
	cfg.N = 4
	cfg.Clients = 4
	cfg.Window = 2 * time.Second
	cfg.FaultAt = time.Second
	cfg.BinWidth = 250 * time.Millisecond
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 400 * time.Millisecond
	}
	cfg.ViewChangeSyncCost = 100 * time.Millisecond
	var pre, post float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Timeline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		k := len(res.Rates)
		for _, r := range res.Rates[:k/2] {
			pre += r
		}
		for _, r := range res.Rates[k/2:] {
			post += r
		}
	}
	half := float64(b.N * 4) // bins per half
	b.ReportMetric(pre/half, "prefault_pps")
	b.ReportMetric(post/half, "postfault_pps")
}

// Figure 5 — crash-stop robustness.
func BenchmarkFig5BroadcastCrash(b *testing.B) {
	benchTimeline(b, sim.TimelineConfig{
		System: sim.SystemAstroI, Fault: sim.FaultCrash, Target: sim.TargetRandom,
	})
}

func BenchmarkFig5ConsensusLeaderCrash(b *testing.B) {
	benchTimeline(b, sim.TimelineConfig{
		System: sim.SystemConsensus, Fault: sim.FaultCrash, Target: sim.TargetLeader,
	})
}

// Figure 6 — asynchrony robustness.
func BenchmarkFig6BroadcastAsync(b *testing.B) {
	benchTimeline(b, sim.TimelineConfig{
		System: sim.SystemAstroI, Fault: sim.FaultDelay, Target: sim.TargetRandom,
	})
}

func BenchmarkFig6ConsensusLeaderAsync(b *testing.B) {
	benchTimeline(b, sim.TimelineConfig{
		System: sim.SystemConsensus, Fault: sim.FaultDelay, Target: sim.TargetLeader,
		RequestTimeout: 10 * time.Second, // loose: Consensus-Leader-A
	})
}

// Figure 7 — the same perturbations with Astro II (the paper uses larger
// N; the bench keeps the fault matrix).
func BenchmarkFig7BroadcastIICrash(b *testing.B) {
	benchTimeline(b, sim.TimelineConfig{
		System: sim.SystemAstroII, Fault: sim.FaultCrash, Target: sim.TargetRandom,
	})
}

func BenchmarkFig7BroadcastIIAsync(b *testing.B) {
	benchTimeline(b, sim.TimelineConfig{
		System: sim.SystemAstroII, Fault: sim.FaultDelay, Target: sim.TargetRandom,
	})
}

// Figure 8 — reconfiguration join latency (async vs consensus-style).
func BenchmarkFig8JoinAstro(b *testing.B) {
	benchJoin(b, sim.SystemAstroII)
}

func BenchmarkFig8JoinConsensus(b *testing.B) {
	benchJoin(b, sim.SystemConsensus)
}

func benchJoin(b *testing.B, system sim.System) {
	b.Helper()
	var total time.Duration
	joins := 0
	for i := 0; i < b.N; i++ {
		points, err := sim.Fig8(sim.Fig8Config{
			StartN:        4,
			EndN:          8,
			StateClients:  20,
			StatePayments: 5,
			Systems:       []sim.System{system},
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			total += p.Latency
			joins++
		}
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(joins), "joinms")
}
