#!/bin/sh
# bench_pr5.sh — regenerate BENCH_PR5.json: the three concurrency
# substrates on the unified lane scheduler (internal/sched) vs their
# dedicated-goroutine baselines, measured from the same tree:
#
#   - transport dispatch: lane-affine flows (default) vs the one-shared-
#     queue serial mode (WithSerialDispatch);
#   - settlement fan-out: stripes pinned to persistent lane flows
#     (default; zero goroutines per delivery) vs spawn-per-delivery
#     (Config.SettleSpawn);
#   - signature verify/sign: unkeyed stealable lane work (default) vs the
#     PR 1 dedicated worker pool (verifier.WithWorkerPool).
#
# Plus the 1-core end-to-end time guards (SignedN4ECDSA,
# SettleBatchECDSA), which must hold or improve vs PR 4.
#
# Usage: scripts/bench_pr5.sh [output.json]   (default BENCH_PR5.json)

set -e
OUT=${1:-BENCH_PR5.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
	echo "== $*" >&2
	go test -run=NONE -bench "$1" -benchtime "$2" "$3" | tee -a "$TMP" >&2
}

# Mixed-channel dispatch throughput: lane flows vs the serial baseline.
run 'BenchmarkMuxDispatchSharded|BenchmarkMuxDispatchSerial' 20000x ./internal/transport/
# Settlement fan-out: pinned stripe lanes vs spawn-per-delivery, one
# 64-payment batch touching every stripe per op.
run 'BenchmarkSettleFanoutLanes|BenchmarkSettleFanoutSpawn' 5000x ./internal/core/
# Verifier backends: 64 real-ECDSA client signatures fanned out per op.
run 'BenchmarkVerifyBackendLanes|BenchmarkVerifyBackendPool' 100x ./internal/crypto/verifier/
# End-to-end regression guards on the default (lane) configuration.
run 'BenchmarkSignedN4ECDSA' 200x ./internal/brb/
run 'BenchmarkSettleBatchECDSA' 500x ./internal/core/

CORES=$(nproc 2>/dev/null || echo 1)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v cores="$CORES" -v cpu="$CPU" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns[name] = $(i-1)
	}
}
END {
	printf "{\n"
	printf "  \"host\": {\n"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"cores\": %s,\n", cores
	printf "    \"note\": \"1-core CI host: lane fan-out parallelism cannot materialize, so lanes-vs-baseline pairs measure pure scheduling overhead — lanes must hold parity or better here and win on multi-core by min(flows, lanes) fan-out, goroutine-churn elimination, and stripe/channel cache affinity. Guards vary run-to-run on this host (SettleBatchECDSA ~106-135us/payment across PRs 3-4); parity within that band holds the guard.\"\n"
	printf "  },\n"
	printf "  \"baseline\": {\n"
	printf "    \"MuxDispatchSerial_ns_op\": %s,\n", ns["BenchmarkMuxDispatchSerial"]
	printf "    \"SettleFanoutSpawn_ns_per_batch\": %s,\n", ns["BenchmarkSettleFanoutSpawn"]
	printf "    \"VerifyBackendPool_ns_per_64sigs\": %s,\n", ns["BenchmarkVerifyBackendPool"]
	printf "    \"SignedN4ECDSA_pr4_ns_op\": 199521,\n"
	printf "    \"SettleBatchECDSA_pr4_ns_per_payment\": 135071\n"
	printf "  },\n"
	printf "  \"lanes\": {\n"
	printf "    \"MuxDispatchSharded_ns_op\": %s,\n", ns["BenchmarkMuxDispatchSharded"]
	printf "    \"SettleFanoutLanes_ns_per_batch\": %s,\n", ns["BenchmarkSettleFanoutLanes"]
	printf "    \"VerifyBackendLanes_ns_per_64sigs\": %s,\n", ns["BenchmarkVerifyBackendLanes"]
	printf "    \"SignedN4ECDSA_ns_op\": %s,\n", ns["BenchmarkSignedN4ECDSA"]
	printf "    \"SettleBatchECDSA_ns_per_payment\": %s\n", ns["BenchmarkSettleBatchECDSA"]
	printf "  },\n"
	printf "  \"summary\": [\n"
	printf "    \"internal/sched unifies the three concurrency substrates grown across PRs 1-4 (per-channel dispatch goroutines, spawn-per-delivery settle fan-out, the verifier worker pool) into one lane runtime: N persistent lanes (~GOMAXPROCS, floor 2), keyed work in per-key FIFO flows with round-robin lane affinity and whole-flow stealing, unkeyed crypto work per-task stealable by lanes and by blocked waiters (Future.Wait, Runtime.Help).\",\n"
	printf "    \"transport.Mux channels, ChanLocal timers (SerializeWith binds the same flow key, so a timer can never interleave mid-task with its channel), settlement stripes, and verify/sign tasks all execute on the same lanes; steady-state settle spawns zero goroutines per delivery.\",\n"
	printf "    \"Per-channel and per-spender FIFO hold under -race with stealing enabled (flows move between lanes wholesale, at task boundaries); a handler wedged on one lane delays only its own flow, preserving the no-head-of-line guarantee even on a single-core host.\",\n"
	printf "    \"Old behaviors stay measurable from the same tree: WithSerialDispatch (one shared flow), Config.SettleSpawn (goroutine-per-stripe-group), verifier.WithWorkerPool (dedicated PR 1 pool), Config.StateStripes=1 (global-lock engine).\"\n"
	printf "  ]\n"
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
