#!/bin/sh
# bench_pr4.sh — regenerate BENCH_PR4.json: before/after numbers for the
# PR 4 wire-amortization work (chain-by-digest references for
# COMMITBATCH/CREDITBATCH, interned dependency certificates).
#
# "Before" numbers are measured from the same tree: the legacy encoders
# (COMMITBATCH with inline chains, CREDITBATCH with the chain re-encoded
# per destination, the extended certificate form) survive as the NACK
# fallback and as explicit baseline benchmarks — so the comparison stays
# honest on whatever host this runs on. All byte counts are per
# destination at chain cap 32, quorum 3 (n=4, f=1), f+1=2 certificate
# signers.
#
# Usage: scripts/bench_pr4.sh [output.json]   (default BENCH_PR4.json)

set -e
OUT=${1:-BENCH_PR4.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
	echo "== $*" >&2
	go test -run=NONE -bench "$1" -benchtime "$2" "$3" | tee -a "$TMP" >&2
}

# Commit path: chain bytes once per destination per wave (CHAINDEF +
# 37-byte references) vs once per slot per signer (inline chains).
run 'BenchmarkCommitWireBytes' 10x ./internal/brb/
# Credit channel: shared chain encoding + references vs per-destination
# re-encoding; dependency certificates: interned chain table vs per-
# signature inline chains.
run 'BenchmarkCreditWireBytes|BenchmarkDepCertWireBytes|BenchmarkCreditChainEncodeAllocs' 10x ./internal/core/
# End-to-end regression guards: the ECDSA signed-BRB path now commits
# through COMMITREFs, and the full settlement path through CREDITREFs.
run 'BenchmarkSignedN4ECDSA' 200x ./internal/brb/
run 'BenchmarkSettleBatchECDSA' 500x ./internal/core/

CORES=$(nproc 2>/dev/null || echo 1)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v cores="$CORES" -v cpu="$CPU" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns[name] = $(i-1)
		if ($i == "bytes/payment") bpp[name] = $(i-1)
		if ($i == "bytes/credit") bpc[name] = $(i-1)
		if ($i == "B/op") bop[name] = $(i-1)
		if ($i == "allocs/op") aop[name] = $(i-1)
	}
}
END {
	printf "{\n"
	printf "  \"host\": {\n"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"cores\": %s,\n", cores
	printf "    \"note\": \"Byte counts are wire bytes per destination at chain cap 32 and are host-independent; ns/op guards are 1-core CI numbers (SettleBatchECDSA varies ~106-128us/payment run-to-run on this host — the PR 3 record was a favorable sample; the guard holds parity within that band). creditref-cold includes the once-per-destination CHAINDEF; creditref-warm is every later reference to a defined chain. Dependency-certificate bytes assume aligned waves (deterministic enqueue order), where the f+1 signers chains intern to one table entry; unaligned waves fall back to one entry per distinct chain.\"\n"
	printf "  },\n"
	printf "  \"before\": {\n"
	printf "    \"Commit_bytes_per_payment_inline_chains\": %s,\n", bpp["BenchmarkCommitWireBytes/full-chain"]
	printf "    \"Credit_channel_bytes_per_credit_creditbatch\": %s,\n", bpc["BenchmarkCreditWireBytes/creditbatch-pr3"]
	printf "    \"DepCert_bytes_per_credit_extended\": %s,\n", bpc["BenchmarkDepCertWireBytes/extended-pr3"]
	printf "    \"CreditWave_encode_B_op\": %s,\n", bop["BenchmarkCreditChainEncodeAllocs/per-dest-pr3"]
	printf "    \"CreditWave_encode_allocs_op\": %s,\n", aop["BenchmarkCreditChainEncodeAllocs/per-dest-pr3"]
	printf "    \"SignedN4ECDSA_pr2_ns_op\": 211506,\n"
	printf "    \"SettleBatchECDSA_pr3_ns_per_payment\": 106038\n"
	printf "  },\n"
	printf "  \"after\": {\n"
	printf "    \"Commit_bytes_per_payment_chain_ref\": %s,\n", bpp["BenchmarkCommitWireBytes/chain-ref"]
	printf "    \"Credit_channel_bytes_per_credit_ref_cold\": %s,\n", bpc["BenchmarkCreditWireBytes/creditref-cold"]
	printf "    \"Credit_channel_bytes_per_credit_ref_warm\": %s,\n", bpc["BenchmarkCreditWireBytes/creditref-warm"]
	printf "    \"DepCert_bytes_per_credit_interned\": %s,\n", bpc["BenchmarkDepCertWireBytes/interned"]
	printf "    \"CreditWave_encode_B_op\": %s,\n", bop["BenchmarkCreditChainEncodeAllocs/shared-ref"]
	printf "    \"CreditWave_encode_allocs_op\": %s,\n", aop["BenchmarkCreditChainEncodeAllocs/shared-ref"]
	printf "    \"SignedN4ECDSA_ns_op\": %s,\n", ns["BenchmarkSignedN4ECDSA"]
	printf "    \"SettleBatchECDSA_ns_per_payment\": %s\n", ns["BenchmarkSettleBatchECDSA"]
	printf "  },\n"
	printf "  \"summary\": [\n"
	printf "    \"Chain-by-digest references close ROADMAP amortization bullets 1 and 4: a digest chain crosses the wire to each destination at most once (CHAINDEF), commits reference it by digest + index (COMMITREF, 37 B per chain signature instead of 44 B per covered slot), and a cache miss — evicted or never-seen chain — NACKs back to the sender, which degrades to the self-contained PR 3 encoding (COMMITBATCH/CREDITBATCH remain fully decodable). Commit bytes per payment drop from quorum x chain-length x 44 to O(1) in chain length.\",\n"
	printf "    \"Receivers bound the reference state with per-peer LRU chain caches (no peer can evict another chains; sender sent-sets age in lockstep), and senders retain recent credit waves so a NACK is answered from a bounded buffer.\",\n"
	printf "    \"CREDITREF sends the wave chain once per destination and encodes it once per wave into ChainSigner pooled Wave scratch (0 allocs/wave vs one full re-encode per destination), with the signature verified against the carried chain digest.\",\n"
	printf "    \"Dependency certificates intern chains (depCertInterned wire form): the chain table encodes each distinct chain once per certificate, and postSettle enqueues credit groups in deterministic representative order so aligned waves make the f+1 signers chains byte-identical — one table entry where the extended form carried f+1 full copies.\"\n"
	printf "  ]\n"
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
