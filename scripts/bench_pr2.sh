#!/bin/sh
# bench_pr2.sh — regenerate BENCH_PR2.json: before/after numbers for the
# PR 2 performance work (sharded transport dispatch, fully-async +
# chain-batched ack signing, pre-lock dependency verification).
#
# "Before" numbers are measured from the same tree: the serial dispatcher
# survives as Mux's WithSerialDispatch baseline mode, and the inline
# per-ack ECDSA survives as the inline-ecdsa sub-benchmark — so the
# comparison stays honest on whatever host this runs on.
#
# Usage: scripts/bench_pr2.sh [output.json]   (default BENCH_PR2.json)

set -e
OUT=${1:-BENCH_PR2.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
	echo "== $*" >&2
	go test -run=NONE -bench "$1" -benchtime "$2" "$3" | tee -a "$TMP" >&2
}

# Mixed-channel dispatch throughput: serial (pre-PR2) vs sharded.
run 'BenchmarkMuxDispatch' 5000x ./internal/transport/
# Ack signing: inline serial ECDSA (pre-PR2 dispatch-goroutine cost) vs
# the pool-side signer with chain batching.
run 'BenchmarkAckSignPipeline' 500x ./internal/brb/
# End-to-end settlement: real-ECDSA signed BRB with batched acks, the
# sim-crypto N=10 regression guard, and the payment-layer settle path.
run 'BenchmarkSignedN4ECDSA' 300x ./internal/brb/
run 'BenchmarkSignedN10$' 1000x ./internal/brb/
run 'BenchmarkSettleBatchECDSA' 500x ./internal/core/

CORES=$(nproc 2>/dev/null || echo 1)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v cores="$CORES" -v cpu="$CPU" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; extra = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "acks/ECDSA") extra = $(i-1)
	}
	if (ns == "") next
	metrics[name] = ns
	if (extra != "") amort[name] = extra
}
END {
	printf "{\n"
	printf "  \"host\": {\n"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"cores\": %s,\n", cores
	printf "    \"note\": \"The >=2x sharded-dispatch target applies to multi-core hosts (speedup bound: min(channels, cores)); on a single core the acceptance evidence is parity plus the core-count-independent wins: per-ack sign cost (one ECDSA covers up to 32 acks via hash chains) and no ECDSA ever executing on a dispatch goroutine.\"\n"
	printf "  },\n"
	printf "  \"before\": {\n"
	printf "    \"MuxDispatch_serial_ns_op\": %s,\n", metrics["BenchmarkMuxDispatchSerial"]
	printf "    \"AckSign_inline_ecdsa_ns_op\": %s,\n", metrics["BenchmarkAckSignPipeline/inline-ecdsa"]
	printf "    \"SignedN10_sim_pr1_ns_op\": 330300,\n"
	printf "    \"SettleBatchECDSA_pr1_ns_per_payment\": 120144\n"
	printf "  },\n"
	printf "  \"after\": {\n"
	printf "    \"MuxDispatch_sharded_ns_op\": %s,\n", metrics["BenchmarkMuxDispatchSharded"]
	printf "    \"AckSign_async_batched_ns_op\": %s,\n", metrics["BenchmarkAckSignPipeline/async-batched"]
	printf "    \"AckSign_acks_per_ECDSA\": %s,\n", amort["BenchmarkAckSignPipeline/async-batched"]
	printf "    \"SignedN4ECDSA_ns_op\": %s,\n", metrics["BenchmarkSignedN4ECDSA"]
	printf "    \"SignedN4ECDSA_acks_per_ECDSA\": %s,\n", amort["BenchmarkSignedN4ECDSA"]
	printf "    \"SignedN10_sim_ns_op\": %s,\n", metrics["BenchmarkSignedN10"]
	printf "    \"SettleBatchECDSA_ns_per_payment\": %s\n", metrics["BenchmarkSettleBatchECDSA"]
	printf "  },\n"
	printf "  \"summary\": [\n"
	printf "    \"Mixed-channel dispatch (4 channels, 4 KiB payloads, hash-work handlers): sharded vs the serial single-goroutine baseline; on multi-core the sharded path scales toward min(channels, cores)x, on one core it must hold parity.\",\n"
	printf "    \"Ack signing: the pre-PR2 path paid one serial ECDSA per ack on the dispatch goroutine; the pool-side signer chains pending acks (cap 32) so one signature covers many instances, and signing never touches a dispatch goroutine (enforced by test).\",\n"
	printf "    \"Chain batching is adaptive: it engages only when measured sign latency exceeds 10us, so the simulated-authenticator harness (HMAC, ~1us) keeps its PR1 wire format and SignedN10 holds near-parity (the pool hop costs a few percent in the cheap-signature regime; chains unbounded cost 2x there, which the adaptivity avoids).\",\n"
	printf "    \"Dependency certificates now verify before the replica state lock (fanned out on the pool) instead of memoized-but-serial under it.\"\n"
	printf "  ]\n"
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
