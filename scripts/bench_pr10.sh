#!/bin/sh
# bench_pr10.sh — regenerate BENCH_PR10.json: the memory and latency
# story of the paged account state (internal/kv + the core pager):
#
#   - resident heap per account across population {100k, 1M} × cache
#     {unbounded, 64k, 8k} — the O(hot-set) claim, with the flat KV index
#     as the remaining small per-key term;
#   - settle cost on a resident (hot) account vs one that must fault in
#     from the store and evict another (cold) — the paging tax;
#   - snapshot cost, full image vs incremental (dirty accounts + manifest);
#   - restart time, paged (index load + demand faults) vs resident
#     (decode and materialize every account).
#
# Usage: scripts/bench_pr10.sh [output.json]   (default BENCH_PR10.json)

set -e
OUT=${1:-BENCH_PR10.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
	echo "== $*" >&2
	go test -run=NONE -bench "$1" -benchtime "$2" "$3" | tee -a "$TMP" >&2
}

# Heap per account: population × cache grid. One shot each; the metric of
# interest is bytes/account, not ns/op.
run 'BenchmarkStateBytesPerAccount' 1x ./internal/core/
# Paging tax per settled payment: resident hit vs fault+evict.
run 'BenchmarkSettleHot$|BenchmarkSettleColdFault$' 5000x ./internal/core/
# Snapshot cost: full 100k-account image vs 1k dirty accounts + manifest.
run 'BenchmarkSnapshotFull$|BenchmarkSnapshotIncremental$' 5x ./internal/core/
# Restart-time curve: paged vs resident at 10k and 100k accounts.
run 'BenchmarkPagedRestart|BenchmarkResidentRestart' 5x ./internal/core/

CORES=$(nproc 2>/dev/null || echo 1)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v cores="$CORES" -v cpu="$CPU" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns[name] = $(i-1)
		if ($i == "bytes/account") ba[name] = $(i-1)
	}
}
END {
	printf "{\n"
	printf "  \"host\": {\n"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"cores\": %s,\n", cores
	printf "    \"note\": \"bytes/account is live heap after GC divided by population; each account carries a one-payment xlog. cache=0 is the fully resident baseline (no KV store). The paged figure includes the flat in-memory KV index (~33 B/key), the bounded account cache, and the store bookkeeping — the index is the term that stays O(accounts), everything else is O(cache).\"\n"
	printf "  },\n"
	printf "  \"resident_bytes_per_account\": {\n"
	printf "    \"accounts_100k\": { \"resident\": %s, \"cache_64k\": %s, \"cache_8k\": %s },\n", \
		ba["BenchmarkStateBytesPerAccount/accounts=100000/cache=0"], \
		ba["BenchmarkStateBytesPerAccount/accounts=100000/cache=65536"], \
		ba["BenchmarkStateBytesPerAccount/accounts=100000/cache=8192"]
	printf "    \"accounts_1M\": { \"resident\": %s, \"cache_64k\": %s, \"cache_8k\": %s }\n", \
		ba["BenchmarkStateBytesPerAccount/accounts=1000000/cache=0"], \
		ba["BenchmarkStateBytesPerAccount/accounts=1000000/cache=65536"], \
		ba["BenchmarkStateBytesPerAccount/accounts=1000000/cache=8192"]
	printf "  },\n"
	printf "  \"settle_per_payment\": {\n"
	printf "    \"hot_resident_ns\": %s,\n", ns["BenchmarkSettleHot"]
	printf "    \"cold_fault_ns\": %s\n", ns["BenchmarkSettleColdFault"]
	printf "  },\n"
	printf "  \"snapshot\": {\n"
	printf "    \"full_100k_accounts_ns\": %s,\n", ns["BenchmarkSnapshotFull"]
	printf "    \"incremental_1k_dirty_ns\": %s\n", ns["BenchmarkSnapshotIncremental"]
	printf "  },\n"
	printf "  \"restart\": {\n"
	printf "    \"paged_10k_ns\": %s,\n", ns["BenchmarkPagedRestart/accounts=10000"]
	printf "    \"paged_100k_ns\": %s,\n", ns["BenchmarkPagedRestart/accounts=100000"]
	printf "    \"resident_10k_ns\": %s,\n", ns["BenchmarkResidentRestart/accounts=10000"]
	printf "    \"resident_100k_ns\": %s\n", ns["BenchmarkResidentRestart/accounts=100000"]
	printf "  },\n"
	printf "  \"summary\": [\n"
	printf "    \"internal/kv is a dependency-free embedded KV store: CRC-framed records on 512-byte page spans, an atomically published index file, and epoch-based recovery that rescans only publish-free regions — torn or unsynced tails degrade to the last published state plus whatever newer records survive intact.\",\n"
	printf "    \"core.State pages against it when Config.StateCacheAccounts > 0: a bounded per-stripe account cache with clock eviction, cold accounts spilling as canonical AccountExport records and faulting back on access; resident mode (the default) is byte-identical in behavior and stays the measured baseline.\",\n"
	printf "    \"WAL snapshots become incremental in paged mode: flush dirty accounts to the store, write a manifest (the image minus xlogs/accounts), publish both atomically, truncate the log — cost proportional to the write set since the last snapshot, not the population.\",\n"
	printf "    \"Restart replays manifest + log tail and faults accounts on demand, so coming back is index-load fast even at large populations; the in-memory index is a sorted flat bulk (~33 B/key) with a self-compacting map overlay, which is what keeps the paged heap under a quarter of resident at 1M accounts.\"\n"
	printf "  ]\n"
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
