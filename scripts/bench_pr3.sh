#!/bin/sh
# bench_pr3.sh — regenerate BENCH_PR3.json: before/after numbers for the
# PR 3 performance work (striped settlement state, settlement-wave CREDIT
# signing).
#
# "Before" numbers are measured from the same tree: the global settlement
# lock survives as NewStateStriped(..., 1) / Config.StateStripes=1 (the
# measured baseline flag), and the inline per-group CREDIT ECDSA survives
# as the inline-ecdsa sub-benchmark — so the comparison stays honest on
# whatever host this runs on.
#
# Usage: scripts/bench_pr3.sh [output.json]   (default BENCH_PR3.json)

set -e
OUT=${1:-BENCH_PR3.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
	echo "== $*" >&2
	go test -run=NONE -bench "$1" -benchtime "$2" "$3" | tee -a "$TMP" >&2
}

# Settlement engine under concurrent appliers on disjoint accounts:
# global lock (pre-PR3) vs hash-sharded stripes.
run 'BenchmarkStripedSettle' 100000x ./internal/core/
# CREDIT signing: inline serial ECDSA per beneficiary-representative group
# (pre-PR3 delivery-goroutine cost) vs the pool-side chain signer with
# settlement-wave batching (cap 32).
run 'BenchmarkCreditSignPipeline' 500x ./internal/core/
# End-to-end regression guards: the full ECDSA settlement path and the
# sim-crypto signed BRB.
run 'BenchmarkSettleBatchECDSA' 500x ./internal/core/
run 'BenchmarkSignedN10$' 1000x ./internal/brb/

CORES=$(nproc 2>/dev/null || echo 1)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v cores="$CORES" -v cpu="$CPU" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; extra = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "credits/ECDSA") extra = $(i-1)
	}
	if (ns == "") next
	metrics[name] = ns
	if (extra != "") amort[name] = extra
}
END {
	printf "{\n"
	printf "  \"host\": {\n"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"cores\": %s,\n", cores
	printf "    \"note\": \"Striped-settlement speedup scales toward min(stripes, cores) on multi-core hosts; on a single core the acceptance evidence is parity between the striped engine and the global-lock baseline plus the core-count-independent win: per-credit ECDSA amortized across a settlement wave (one signature covers up to 32 credit groups via a digest chain).\"\n"
	printf "  },\n"
	printf "  \"before\": {\n"
	printf "    \"Settle_global_lock_ns_op\": %s,\n", metrics["BenchmarkStripedSettle/global-lock"]
	printf "    \"CreditSign_inline_ecdsa_ns_op\": %s,\n", metrics["BenchmarkCreditSignPipeline/inline-ecdsa"]
	printf "    \"SettleBatchECDSA_pr2_ns_per_payment\": 139946,\n"
	printf "    \"SignedN10_sim_pr2_ns_op\": 358515\n"
	printf "  },\n"
	printf "  \"after\": {\n"
	printf "    \"Settle_striped_ns_op\": %s,\n", metrics["BenchmarkStripedSettle/striped"]
	printf "    \"CreditSign_chain_batched_ns_op\": %s,\n", metrics["BenchmarkCreditSignPipeline/chain-batched"]
	printf "    \"CreditSign_credits_per_ECDSA\": %s,\n", amort["BenchmarkCreditSignPipeline/chain-batched"]
	printf "    \"SettleBatchECDSA_ns_per_payment\": %s,\n", metrics["BenchmarkSettleBatchECDSA"]
	printf "    \"SignedN10_sim_ns_op\": %s\n", metrics["BenchmarkSignedN10"]
	printf "  },\n"
	printf "  \"summary\": [\n"
	printf "    \"Settlement state is striped: per-account hash-sharded lock domains (types.MixedSharding, bit-mixed so stripe and shard assignment cannot correlate, default 16) replace the single Replica.mu/State lock, and delivered batches fan out per stripe, so payments touching disjoint accounts settle concurrently across the PR 2 sharded dispatch goroutines. Config.StateStripes=1 keeps the global-lock engine as the measured baseline; on this host the striped engine must hold parity per op, with speedup bounded by min(stripes, cores) on multi-core.\",\n"
	printf "    \"CREDIT signing is batched per settlement wave: the delivery goroutine no longer hashes and ECDSA-signs one CREDIT per beneficiary-representative group inline; groups queue on a verifier.ChainSigner (the generalized BRB ack-chain scheduler) and pending waves collapse into one signature over a chain of CreditGroupDigests (CREDITBATCH wire kind, cap 32, single-group fallback, adaptive >10us threshold).\",\n"
	printf "    \"Chain-signed CREDITs ride inside dependency certificates (DepSig.Chain); verifiers match the group digest against the chain and memoize the chain-digest ECDSA, so a wave crediting k groups costs one signature at the signer and one verification per signer at each receiver.\",\n"
	printf "    \"Credit-group digests are memoized at the accumulator: k CREDIT copies from k signers hash the group once (cheap-key bucket + exact group compare), not k times.\"\n"
	printf "  ]\n"
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
