#!/bin/sh
# bench_pr6.sh — regenerate BENCH_PR6.json: the cost and payoff of durable
# replica state (internal/wal), measured from the same tree:
#
#   - settle throughput with the file-backed WAL on every replica vs the
#     Nop backend (identical scheduler path, no I/O) vs memory-only — the
#     Nop gap is the durability plumbing, the File gap is write+fsync;
#   - amortized WAL append cost through the Writer (flow hop + framing +
#     tail-sync fsync batching), File vs Nop;
#   - recovery-replay time vs log length: raw frame replay (wal.Load) and
#     full replica restart (NewReplica over an uncompacted log).
#
# Usage: scripts/bench_pr6.sh [output.json]   (default BENCH_PR6.json)

set -e
OUT=${1:-BENCH_PR6.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
	echo "== $*" >&2
	go test -run=NONE -bench "$1" -benchtime "$2" "$3" | tee -a "$TMP" >&2
}

# End-to-end settle throughput: 4 replicas, 64 clients, 256-payment
# batches, per settled payment.
run 'BenchmarkSettleWALFile|BenchmarkSettleWALNop|BenchmarkSettleWALOff' 2000x ./internal/core/
# Amortized durable-record cost through the Writer.
run 'BenchmarkWriterAppendFile|BenchmarkWriterAppendNop' 20000x ./internal/wal/
# Raw log replay (frame scan + CRC) vs length.
run 'BenchmarkReplay' 5x ./internal/wal/
# Full replica restart (replay + projection rebuild) vs settled history.
run 'BenchmarkReplicaRecover' 5x ./internal/core/

CORES=$(nproc 2>/dev/null || echo 1)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v cores="$CORES" -v cpu="$CPU" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns[name] = $(i-1)
	}
}
END {
	printf "{\n"
	printf "  \"host\": {\n"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"cores\": %s,\n", cores
	printf "    \"note\": \"Settle numbers are ns per settled payment across a 4-replica deployment; every replica carries its own WAL, so File pays 4 independent fsync streams. Tail-sync batching amortizes fsyncs across whatever is in flight, so the File/Nop gap shrinks as load rises; single-payment closed-loop traffic is the worst case for it.\"\n"
	printf "  },\n"
	printf "  \"settle_per_payment\": {\n"
	printf "    \"WAL_file_ns\": %s,\n", ns["BenchmarkSettleWALFile"]
	printf "    \"WAL_nop_ns\": %s,\n", ns["BenchmarkSettleWALNop"]
	printf "    \"WAL_off_ns\": %s\n", ns["BenchmarkSettleWALOff"]
	printf "  },\n"
	printf "  \"wal_append_per_record\": {\n"
	printf "    \"file_ns\": %s,\n", ns["BenchmarkWriterAppendFile"]
	printf "    \"nop_ns\": %s\n", ns["BenchmarkWriterAppendNop"]
	printf "  },\n"
	printf "  \"replay\": {\n"
	printf "    \"load_1k_records_ns\": %s,\n", ns["BenchmarkReplay/records=1000"]
	printf "    \"load_10k_records_ns\": %s,\n", ns["BenchmarkReplay/records=10000"]
	printf "    \"load_100k_records_ns\": %s,\n", ns["BenchmarkReplay/records=100000"]
	printf "    \"restart_1k_payments_ns\": %s,\n", ns["BenchmarkReplicaRecover/payments=1000"]
	printf "    \"restart_10k_payments_ns\": %s\n", ns["BenchmarkReplicaRecover/payments=10000"]
	printf "  },\n"
	printf "  \"summary\": [\n"
	printf "    \"internal/wal gives each replica an append-only CRC-framed log with fsync batching (Append is async on the replica'\''s WAL flow; a quiescent tail triggers sync, Barrier forces it) plus periodic compacted snapshots that reuse the reconfig full-state encoding.\",\n"
	printf "    \"The log records endorsements, broadcast-slot reservations (Barrier-synced before the first wire message), settled batches, and dependency certificates; replay rebuilds state, then the restarted replica catches up via reconfig.FetchState/MergeFullSnapshot and re-requests CREDIT signatures lost while down (CREDITREDO).\",\n"
	printf "    \"kill -9 recovery is exercised by internal/sim (Kill/Restart/FaultRestart) and examples/robustness: FIFO xlogs, zero double endorsements, and strict conservation of money across an arbitrary-point kill.\",\n"
	printf "    \"Replay scales linearly with the uncompacted tail; the snapshot cadence (Config.WALSnapshotEvery, default 4096 settled batches) bounds it in deployments.\"\n"
	printf "  ]\n"
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
