#!/bin/sh
# bench_pr9.sh — regenerate BENCH_PR9.json: before/after numbers for the
# PR 9 goroutine-free, allocation-lean message pipeline.
#
# "Before" numbers are measured from the same tree: the goroutine-per-
# commit coordinator survives behind Config.CommitSpawn, eager chain
# definitions behind Config.EagerChainDefs, the legacy COMMITBATCH and v1
# batch encodings as the fallback/baseline encoders — so every comparison
# runs both sides on this host.
#
# Measured:
#   - commit latency: continuation-style coordinators (detached verifier
#     continuations, zero goroutines per commit) vs spawn-per-commit;
#   - chain-definition bytes/payment: lazy CHAINDEF (steady state sends
#     none; NACK worst case pays the demand round trip) vs eager;
#   - fallback resend bytes/payment: tabled COMMITTAB vs legacy
#     COMMITBATCH with inline chains;
#   - payment-batch bytes/payment: batch-wide chain table (v2) vs
#     per-certificate chains (v1);
#   - end-to-end regression guard: full ECDSA settlement path.
#
# Usage: scripts/bench_pr9.sh [output.json]   (default BENCH_PR9.json)

set -e
OUT=${1:-BENCH_PR9.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
	echo "== $*" >&2
	go test -run=NONE -bench "$1" -benchtime "$2" "$3" | tee -a "$TMP" >&2
}

# Commit coordinators: continuation vs goroutine-per-commit, same ECDSA
# N=4 pipeline.
run 'BenchmarkCommitContinuationECDSA|BenchmarkCommitSpawnECDSA' 200x ./internal/brb/
# Chain-definition economics and the tabled fallback resend.
run 'BenchmarkChainDefWireBytes|BenchmarkCommitTabWireBytes' 10x ./internal/brb/
# Batch-level chain interning on the payment wire.
run 'BenchmarkBatchChainWireBytes' 10x ./internal/core/
# End-to-end regression guard (lazy defs + continuations are the
# defaults, so this measures the PR 9 pipeline).
run 'BenchmarkSettleBatchECDSA' 500x ./internal/core/

CORES=$(nproc 2>/dev/null || echo 1)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v cores="$CORES" -v cpu="$CPU" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns[name] = $(i-1)
		if ($i == "bytes/payment") bpp[name] = $(i-1)
		if ($i == "defbytes/payment") dbp[name] = $(i-1)
	}
}
END {
	printf "{\n"
	printf "  \"host\": {\n"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"cores\": %s,\n", cores
	printf "    \"note\": \"Byte counts encode the exact messages each mode sends (chain cap 32, quorum 3, per destination) and are host-independent; ns/op numbers are 1-core CI samples — on a 1-core host continuation vs spawn is parity-or-better, the win is the removed per-commit goroutine (see the sched.Spawns guard in internal/core/pipeline_guard_test.go). lazy-warm is the steady state: sign-time self-priming plus ACKBATCH learning mean symmetric traffic defines no chains at all; lazy-nack is the cold/evicted worst case including the demand round trip.\"\n"
	printf "  },\n"
	printf "  \"before\": {\n"
	printf "    \"CommitSpawnECDSA_ns_op\": %s,\n", ns["BenchmarkCommitSpawnECDSA"]
	printf "    \"ChainDef_bytes_per_payment_eager\": %s,\n", bpp["BenchmarkChainDefWireBytes/eager"]
	printf "    \"ChainDef_defbytes_per_payment_eager\": %s,\n", dbp["BenchmarkChainDefWireBytes/eager"]
	printf "    \"Fallback_resend_bytes_per_payment_commitbatch\": %s,\n", bpp["BenchmarkCommitTabWireBytes/legacy-batch"]
	printf "    \"Batch_bytes_per_payment_v1\": %s\n", bpp["BenchmarkBatchChainWireBytes/per-cert-v1"]
	printf "  },\n"
	printf "  \"after\": {\n"
	printf "    \"CommitContinuationECDSA_ns_op\": %s,\n", ns["BenchmarkCommitContinuationECDSA"]
	printf "    \"ChainDef_bytes_per_payment_lazy_warm\": %s,\n", bpp["BenchmarkChainDefWireBytes/lazy-warm"]
	printf "    \"ChainDef_defbytes_per_payment_lazy_warm\": %s,\n", dbp["BenchmarkChainDefWireBytes/lazy-warm"]
	printf "    \"ChainDef_bytes_per_payment_lazy_nack\": %s,\n", bpp["BenchmarkChainDefWireBytes/lazy-nack"]
	printf "    \"Fallback_resend_bytes_per_payment_committab\": %s,\n", bpp["BenchmarkCommitTabWireBytes/tabled"]
	printf "    \"Batch_bytes_per_payment_v2\": %s,\n", bpp["BenchmarkBatchChainWireBytes/batch-table-v2"]
	printf "    \"SettleBatchECDSA_ns_per_payment\": %s\n", ns["BenchmarkSettleBatchECDSA"]
	printf "  },\n"
	printf "  \"summary\": [\n"
	printf "    \"Continuation-style commit coordinators replace the goroutine-per-commit baseline: commit verification runs as detached continuations on the verifier lanes (TryAsync submission can never wedge a full queue against itself), commitVerified only takes the protocol lock and drains deliveries, and the sched.Spawns guard asserts steady-state settlement spawns zero goroutines.\",\n"
	printf "    \"Lazy CHAINDEF inverts the definition protocol: definitions go out only on demand (NACK), and three no-NACK legs make the symmetric steady state define-free — sign-time self-priming, ACKBATCH chain learning, and content-addressed any-peer cache probes. Receivers park references keyed by the missing chain digest (bounded buffer; overflow degrades to NACK, so liveness never depends on it).\",\n"
	printf "    \"The tabled COMMITTAB fallback resend and the v2 payment-batch form intern chains at message/batch level: each distinct chain is encoded once per message instead of once per certificate, with all older wire forms still decodable and selectable as baselines from the same tree.\"\n"
	printf "  ]\n"
	printf "}\n"
}' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
