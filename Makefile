# Astro reproduction — build and verification targets.
#
# `make verify` is the tier-1 gate plus the race suite for the packages
# touching the parallel verification pipeline.

GO ?= go

.PHONY: all build test vet race bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the crypto/broadcast/payment hot path — the
# packages with cross-goroutine verification completions.
race:
	$(GO) test -race ./internal/crypto/... ./internal/brb/... ./internal/core/...

# Headline benchmarks: parallel certificate verification, signed BRB, and
# the end-to-end ECDSA settlement path.
bench:
	$(GO) test -run=NONE -bench 'BenchmarkVerifyCertificateParallel|BenchmarkVerifyBatchClientSigs' -benchtime=100x ./internal/crypto/
	$(GO) test -run=NONE -bench 'BenchmarkSignedN10' -benchtime=1000x ./internal/brb/
	$(GO) test -run=NONE -bench 'BenchmarkSettleBatchECDSA' -benchtime=500x ./internal/core/

verify: build vet test race
