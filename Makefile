# Astro reproduction — build and verification targets.
#
# `make check` is the default gate: build, vet, tests, and the race suite
# over the concurrency-heavy packages. `make verify` remains as an alias.

GO ?= go

.PHONY: all build test vet race bench bench-pr2 bench-pr3 profile check verify

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the sharded transport dispatch and the
# crypto/broadcast/payment hot path — the packages with cross-goroutine
# completions and per-channel dispatch.
race:
	$(GO) test -race ./internal/transport/... ./internal/crypto/... ./internal/brb/... ./internal/core/...

# Headline benchmarks: parallel certificate verification, signed BRB, and
# the end-to-end ECDSA settlement path.
bench:
	$(GO) test -run=NONE -bench 'BenchmarkVerifyCertificateParallel|BenchmarkVerifyBatchClientSigs' -benchtime=100x ./internal/crypto/
	$(GO) test -run=NONE -bench 'BenchmarkSignedN10' -benchtime=1000x ./internal/brb/
	$(GO) test -run=NONE -bench 'BenchmarkSettleBatchECDSA' -benchtime=500x ./internal/core/

# PR 2 evidence: mixed-channel dispatch throughput (sharded vs serial
# baseline), async/chain-batched ack signing, and batched-ack settlement.
# Regenerates BENCH_PR2.json with numbers measured on this host.
bench-pr2:
	sh scripts/bench_pr2.sh BENCH_PR2.json

# PR 3 evidence: striped settlement state (vs the global-lock baseline,
# Config.StateStripes=1) and settlement-wave CREDIT signing (per-credit
# ECDSA amortization). Regenerates BENCH_PR3.json.
bench-pr3:
	sh scripts/bench_pr3.sh BENCH_PR3.json

# Mutex-contention profile of the settlement engine: runs the striped
# settle benchmark with mutex profiling and prints the top contended
# call paths (artifacts: core.test, mutex.out).
profile:
	$(GO) test -run=NONE -bench BenchmarkStripedSettle -benchtime=200000x \
		-mutexprofile=mutex.out -o core.test ./internal/core/
	$(GO) tool pprof -top -nodecount=20 core.test mutex.out

check: build vet test race

verify: check
