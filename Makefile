# Astro reproduction — build and verification targets.
#
# `make check` is the default gate: build, vet, tests, and the race suite
# over the concurrency-heavy packages. `make verify` remains as an alias.

GO ?= go

.PHONY: all build test vet race bench bench-pr2 bench-pr3 bench-pr4 bench-pr5 bench-pr6 bench-pr9 bench-pr10 fuzz-smoke chaos-smoke chaos-smoke-tcp soak profile profile-mem check verify

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the lane scheduler, transport dispatch, and the
# crypto/broadcast/payment hot path — the packages with cross-goroutine
# completions, flow stealing, and per-channel dispatch (including the PR 4
# chain-reference caches, the tcpnet dial/redial liveness tests, the
# PR 6 WAL writer/crash-recovery paths, the PR 7 Byzantine/chaos
# interposition layer with its always-on auditor, and the PR 10 embedded
# KV store behind the paged account state).
race:
	$(GO) test -race ./internal/sched/... ./internal/types/... ./internal/transport/... ./internal/crypto/... ./internal/brb/... ./internal/core/... ./internal/wal/... ./internal/kv/...
	$(GO) test -race -run 'Byzantine|Equivocation|Chaos|Partition|Reconfiguration|Auditor|LinkDelay' ./internal/sim/

# Headline benchmarks: parallel certificate verification, signed BRB, and
# the end-to-end ECDSA settlement path.
bench:
	$(GO) test -run=NONE -bench 'BenchmarkVerifyCertificateParallel|BenchmarkVerifyBatchClientSigs' -benchtime=100x ./internal/crypto/
	$(GO) test -run=NONE -bench 'BenchmarkSignedN10' -benchtime=1000x ./internal/brb/
	$(GO) test -run=NONE -bench 'BenchmarkSettleBatchECDSA' -benchtime=500x ./internal/core/

# PR 2 evidence: mixed-channel dispatch throughput (sharded vs serial
# baseline), async/chain-batched ack signing, and batched-ack settlement.
# Regenerates BENCH_PR2.json with numbers measured on this host.
bench-pr2:
	sh scripts/bench_pr2.sh BENCH_PR2.json

# PR 3 evidence: striped settlement state (vs the global-lock baseline,
# Config.StateStripes=1) and settlement-wave CREDIT signing (per-credit
# ECDSA amortization). Regenerates BENCH_PR3.json.
bench-pr3:
	sh scripts/bench_pr3.sh BENCH_PR3.json

# PR 4 evidence: wire bytes per committed payment / per credit at chain
# cap 32 — chain-by-digest references (CHAINDEF/COMMITREF/CREDITREF) and
# interned dependency certificates vs the legacy self-contained forms,
# which remain measured from the same tree as the NACK fallback.
# Regenerates BENCH_PR4.json.
bench-pr4:
	sh scripts/bench_pr4.sh BENCH_PR4.json

# PR 5 evidence: the three concurrency substrates on the unified lane
# scheduler vs their dedicated-goroutine baselines — sharded-goroutine vs
# lane dispatch (transport), spawn-per-delivery vs pinned-stripe settle
# fan-out (core), worker-pool vs lane verify (crypto) — plus the 1-core
# end-to-end time guards. Regenerates BENCH_PR5.json.
bench-pr5:
	sh scripts/bench_pr5.sh BENCH_PR5.json

# PR 6 evidence: settle throughput with the file-backed WAL vs the Nop
# (scheduler-only) and memory-only baselines, amortized WAL append cost,
# and recovery-replay time vs log length. Regenerates BENCH_PR6.json.
bench-pr6:
	sh scripts/bench_pr6.sh BENCH_PR6.json

# PR 9 evidence: continuation-style commit coordinators vs the goroutine-
# per-commit baseline, lazy vs eager CHAINDEF wire economics, the tabled
# COMMITTAB fallback vs legacy COMMITBATCH, and batch-level chain
# interning (v2 payment batches). The spawn/alloc guards themselves ride
# `make test`/`make check` (internal/core/pipeline_guard_test.go).
# Regenerates BENCH_PR9.json.
bench-pr9:
	sh scripts/bench_pr9.sh BENCH_PR9.json

# PR 10 evidence: paged account state over the embedded KV store —
# resident heap per account across population × cache grids (the
# O(hot-set) claim), hot vs cold-fault settle cost, incremental vs full
# snapshot, and the paged vs resident restart-time curve.
# Regenerates BENCH_PR10.json.
bench-pr10:
	sh scripts/bench_pr10.sh BENCH_PR10.json

# Short fuzz pass over every wire/record decoder harness — the three
# generations of chain-ref forms (brb), the credit channel, durable
# snapshot, and manifest images (core), the WAL frame scanner (wal), and
# the KV record/index parsers that recovery trusts (kv). ~10s per
# fuzzer; CI-smoke depth, not a soak.
FUZZTIME ?= 10s
fuzz-smoke:
	for f in FuzzScanFrames FuzzFileLoad; do \
		$(GO) test -run=NONE -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) ./internal/wal/ || exit 1; done
	for f in FuzzDecodeKVPage FuzzDecodeKVIndex; do \
		$(GO) test -run=NONE -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) ./internal/kv/ || exit 1; done
	for f in FuzzDecodeCreditChannel FuzzDecodeBatch FuzzDecodeDependency FuzzDecodeReplicaImage FuzzDecodeManifest FuzzDecodePaymentChannel; do \
		$(GO) test -run=NONE -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) ./internal/core/ || exit 1; done
	for f in FuzzDecodeChainDef FuzzDecodeAckCert FuzzDecodeCommitRef FuzzDecodeChainNack FuzzDecodeCommitTab; do \
		$(GO) test -run=NONE -fuzz="^$$f$$" -fuzztime=$(FUZZTIME) ./internal/brb/ || exit 1; done
	$(GO) test -run=NONE -fuzz="^FuzzDecodeReconfigChannel$$" -fuzztime=$(FUZZTIME) ./internal/reconfig/

# Seeded Byzantine + chaos scenario matrix under the invariant auditor:
# every malicious behavior at f faulty (clean audit required), the f+1
# collusion that must be detected, chaos/partition soaks, kill -9 under
# partition, and reconfiguration (join + crash-leave) under live load
# with faults active. Deterministic per seed; CI-smoke depth.
chaos-smoke:
	$(GO) test -count=1 -run 'Byzantine|Equivocation|Chaos|Partition|Reconfiguration|Auditor|LinkDelay' ./internal/sim/
	$(GO) test -count=1 -race -run 'NackStorm|NackNonMember|NackUnregistered' ./internal/brb/ ./internal/core/
	$(GO) test -count=1 -run 'ViaFacade' .

# The scenario matrix across real astro-node processes on real TCP:
# Byzantine behavior at f under per-link chaos, a scheduled
# partition→heal with a kill -9/WAL-restart mid-partition, and the
# Byzantine-client storm at a live payment edge — each ending in the
# out-of-process invariant audit over state-transfer snapshots.
# CI-sized (builds astro-node once, ~30s total).
chaos-smoke-tcp:
	$(GO) test -count=1 ./internal/e2e/

# Long-soak survival harness — NOT a CI test. Minutes of randomized
# kill -9/restart cycles, a rotating Byzantine seat, a hostile client,
# and seeded chaos on a durable N>=7 cluster, under the always-on
# auditor, ending in a quiescent conservation check. Tune with e.g.
# SOAK_DURATION=30m, SOAK_FLAGS='-n 10 -clients 16 -seed 7'.
SOAK_DURATION ?= 2m
SOAK_FLAGS ?=
soak:
	$(GO) run ./cmd/astro-soak -duration $(SOAK_DURATION) $(SOAK_FLAGS)

# Mutex-contention profile of the settlement engine: runs the striped
# settle benchmark with mutex profiling and prints the top contended
# call paths (artifacts: core.test, mutex.out).
profile:
	$(GO) test -run=NONE -bench BenchmarkStripedSettle -benchtime=200000x \
		-mutexprofile=mutex.out -o core.test ./internal/core/
	$(GO) tool pprof -top -nodecount=20 core.test mutex.out

# Heap profile of the paged state at scale: runs the 100k-account rows
# of the bytes/account grid under -memprofile and prints the top
# allocators by allocated space — where the per-account bytes come from
# (benchmark states are dead by profile-write time, so alloc_space is
# the meaningful index; artifacts: core.test, mem.out).
profile-mem:
	$(GO) test -run=NONE -bench 'BenchmarkStateBytesPerAccount/accounts=100000/' -benchtime=1x \
		-memprofile=mem.out -o core.test ./internal/core/
	$(GO) tool pprof -top -nodecount=20 -sample_index=alloc_space core.test mem.out

check: build vet test race chaos-smoke-tcp

verify: check
