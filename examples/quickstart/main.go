// Quickstart: deploy an embedded 4-replica Astro II system, make a few
// payments, and audit an exclusive log.
package main

import (
	"fmt"
	"log"
	"time"

	"astro"
)

func main() {
	// Four replicas tolerate one Byzantine fault (N = 3f+1). Every
	// client starts with 1000 units.
	sys, err := astro.New(astro.Options{Replicas: 4, Genesis: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	alice := sys.Client(1)
	bob := sys.Client(2)

	// A payment is a single broadcast — no consensus. The client orders
	// its own payments with sequence numbers; WaitConfirm returns when
	// the representative has settled it.
	id, err := alice.Pay(bob.ID(), 250)
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("settled %v: alice -> bob, 250\n", id)

	// Bob can immediately spend what he received: the funds transfer as
	// a dependency certificate attached to his next outgoing payment.
	id, err = bob.Pay(3, 100)
	if err != nil {
		log.Fatal(err)
	}
	if err := bob.WaitConfirm(id, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("settled %v: bob -> carol, 100\n", id)

	// Carol's spendable balance includes the dependency certificate her
	// representative accumulates from CREDIT messages; give it a moment.
	for deadline := time.Now().Add(5 * time.Second); sys.Balance(3) != 1100 && time.Now().Before(deadline); {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("alice: %d, bob: %d, carol: %d\n",
		sys.Balance(1), sys.Balance(2), sys.Balance(3))

	// Every replica holds a copy of each exclusive log; audit alice's.
	waitConverged(sys, 1, 1)
	for _, r := range sys.Replicas() {
		log_, ok := sys.Audit(r, 1)
		fmt.Printf("replica %d: xlog(alice) = %v consistent=%v\n", r, log_, ok)
	}
}

// waitConverged waits until every replica settled at least n payments of
// the client (confirmation only proves the representative has).
func waitConverged(sys *astro.System, client astro.ClientID, n int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, r := range sys.Replicas() {
			if log_, _ := sys.Audit(r, client); len(log_) < n {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
