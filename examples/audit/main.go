// Audit: exclusive logs make Astro auditable — every replica holds every
// client's full payment history, consistent across replicas. This example
// runs a payment mix, then cross-checks all xlogs at all replicas and
// verifies conservation of money.
package main

import (
	"fmt"
	"log"
	"time"

	"astro"
)

func main() {
	const nClients = 6
	const genesis = 1000

	sys, err := astro.New(astro.Options{Version: astro.AstroI, Replicas: 4, Genesis: genesis})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A little economy: everyone pays their neighbour twice.
	clients := make([]*astro.Client, nClients)
	for i := range clients {
		clients[i] = sys.Client(astro.ClientID(i + 1))
	}
	for round := 0; round < 2; round++ {
		for i, c := range clients {
			to := clients[(i+1)%nClients].ID()
			id, err := c.Pay(to, astro.Amount(10*(i+1)))
			if err != nil {
				log.Fatal(err)
			}
			if err := c.WaitConfirm(id, 5*time.Second); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Wait for every replica to settle everything, then audit.
	waitAllSettled(sys, nClients, 2)

	fmt.Println("auditing exclusive logs across replicas:")
	for i := 0; i < nClients; i++ {
		c := astro.ClientID(i + 1)
		var reference []astro.Payment
		for _, r := range sys.Replicas() {
			logCopy, consistent := sys.Audit(r, c)
			if !consistent {
				log.Fatalf("replica %d: inconsistent xlog for client %d", r, c)
			}
			if reference == nil {
				reference = logCopy
			} else if !equal(reference, logCopy) {
				log.Fatalf("replica %d disagrees on client %d's xlog", r, c)
			}
		}
		fmt.Printf("  client %d: %d payments, identical at all %d replicas\n",
			c, len(reference), len(sys.Replicas()))
	}

	// Conservation: total balance equals total genesis.
	var total astro.Amount
	for i := 0; i < nClients; i++ {
		total += sys.Balance(astro.ClientID(i + 1))
	}
	fmt.Printf("conservation: total balance %d == genesis total %d: %v\n",
		total, nClients*genesis, total == nClients*genesis)
}

func equal(a, b []astro.Payment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func waitAllSettled(sys *astro.System, nClients, perClient int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, r := range sys.Replicas() {
			for i := 0; i < nClients; i++ {
				if logCopy, _ := sys.Audit(r, astro.ClientID(i+1)); len(logCopy) < perClient {
					done = false
				}
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("replicas did not converge")
}
