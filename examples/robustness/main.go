// Robustness: the property the paper's Figures 5-7 demonstrate — Astro's
// throughput is unaffected by a crashed or slowed replica (beyond the
// clients it represented), because there is no leader.
//
// Ten clients pump payments through a 7-replica system with durable
// (WAL-backed) replicas; partway through we kill -9 one replica, then
// restart it from its on-disk state. Watch per-second throughput: it dips
// only by the share of clients represented by the killed replica, and
// those clients resume once it is back. At the end the demo audits the
// safety story: FIFO exclusive logs on every replica, no double
// endorsements, and conservation of money across the crash.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"astro"
)

func main() {
	dataDir, err := os.MkdirTemp("", "astro-robustness-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	sys, err := astro.New(astro.Options{
		Replicas:   7,
		Genesis:    1 << 40,
		WANLatency: true,    // the paper's multi-region latency profile
		DataDir:    dataDir, // durable replicas: kill -9 is survivable
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const (
		nClients  = 10
		seconds   = 9
		killAt    = 3
		restartAt = 6
		sink      = astro.ClientID(100)
	)
	victim := sys.RepresentativeOf(1)

	// Count confirmations separately for clients of the doomed replica
	// (fate-sharing: they stall while it is down) and everyone else.
	var confirmedAffected, confirmedOthers atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	affected := 0
	for i := 0; i < nClients; i++ {
		cid := astro.ClientID(i + 1)
		counter := &confirmedOthers
		if sys.RepresentativeOf(cid) == victim {
			counter = &confirmedAffected
			affected++
		}
		c := sys.Client(cid)
		wg.Add(1)
		go func(c *astro.Client, counter *atomic.Uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := c.Pay(sink, 1)
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				if err := c.WaitConfirm(id, 2*time.Second); err != nil {
					// The representative may be down or freshly restarted:
					// resynchronize the sequence number and re-drive.
					c.SyncSeq(2 * time.Second)
				}
				counter.Add(1)
			}
		}(c, counter)
	}

	fmt.Printf("running %d clients over 7 durable replicas; kill -9 replica %d (representing %d clients) at t=%ds, restart at t=%ds\n",
		nClients, victim, affected, killAt, restartAt)

	lastA, lastO := uint64(0), uint64(0)
	for s := 1; s <= seconds; s++ {
		time.Sleep(time.Second)
		marker := ""
		switch s {
		case killAt:
			sys.Kill(victim)
			marker = fmt.Sprintf("   <- replica %d killed (-9, no flush)", victim)
		case restartAt:
			if err := sys.Restart(victim); err != nil {
				log.Fatal(err)
			}
			marker = fmt.Sprintf("   <- replica %d restarted from its WAL", victim)
		}
		curA, curO := confirmedAffected.Load(), confirmedOthers.Load()
		fmt.Printf("t=%ds  unaffected clients %4d pps | killed rep's clients %4d pps%s\n",
			s, curO-lastO, curA-lastA, marker)
		lastA, lastO = curA, curO
	}
	close(stop)
	wg.Wait()

	// Close the window between the restart-time state fetch and live
	// resubscription, then audit the safety story.
	var donor astro.ReplicaID
	for _, id := range sys.Replicas() {
		if id != victim {
			donor = id
			break
		}
	}
	if err := sys.AntiEntropy(victim, donor); err != nil {
		log.Fatal(err)
	}

	clients := make([]astro.ClientID, 0, nClients+1)
	for i := 0; i < nClients; i++ {
		clients = append(clients, astro.ClientID(i+1))
	}
	clients = append(clients, sink)
	genesisTotal := astro.Amount(len(clients)) << 40

	deadline := time.Now().Add(15 * time.Second)
	for {
		var total astro.Amount
		for _, c := range clients {
			total += sys.Balance(c)
		}
		if total == genesisTotal {
			fmt.Printf("conservation: every unit of the %d-client genesis is spendable after the crash\n", len(clients))
			break
		}
		if total > genesisTotal {
			log.Fatalf("money created: %d > %d", total, genesisTotal)
		}
		if time.Now().After(deadline) {
			log.Fatalf("conservation violated: spendable total %d, genesis %d", total, genesisTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, r := range sys.Replicas() {
		for _, c := range clients {
			if _, ok := sys.Audit(r, c); !ok {
				log.Fatalf("replica %d: client %d exclusive log failed audit", r, c)
			}
		}
	}
	fmt.Println("audit: FIFO exclusive logs on all 7 replicas, no equivocation, across a kill -9;")
	fmt.Println("the system has no leader: only the killed representative's own clients paused, and they resumed on restart")
}
