// Robustness: the property the paper's Figures 5-7 demonstrate — Astro's
// throughput is unaffected by a crashed or slowed replica (beyond the
// clients it represented), because there is no leader.
//
// Ten clients pump payments through a 7-replica system; halfway through we
// crash one replica. Watch per-second throughput: it dips only by the
// share of clients represented by the crashed replica.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"astro"
)

func main() {
	sys, err := astro.New(astro.Options{
		Replicas:   7,
		Genesis:    1 << 40,
		WANLatency: true, // the paper's multi-region latency profile
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const (
		nClients = 10
		seconds  = 8
		crashAt  = 4
	)
	victim := sys.RepresentativeOf(1)

	// Count confirmations separately for clients of the doomed replica
	// (fate-sharing: they stop when it crashes) and everyone else.
	var confirmedAffected, confirmedOthers atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	affected := 0
	for i := 0; i < nClients; i++ {
		cid := astro.ClientID(i + 1)
		counter := &confirmedOthers
		if sys.RepresentativeOf(cid) == victim {
			counter = &confirmedAffected
			affected++
		}
		c := sys.Client(cid)
		wg.Add(1)
		go func(c *astro.Client, counter *atomic.Uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := c.Pay(astro.ClientID(100), 1)
				if err != nil {
					continue
				}
				if err := c.WaitConfirm(id, 2*time.Second); err != nil {
					continue // the crashed representative's clients stall here
				}
				counter.Add(1)
			}
		}(c, counter)
	}

	fmt.Printf("running %d clients over 7 replicas; will crash replica %d (representing %d clients) at t=%ds\n",
		nClients, victim, affected, crashAt)

	lastA, lastO := uint64(0), uint64(0)
	for s := 1; s <= seconds; s++ {
		time.Sleep(time.Second)
		if s == crashAt {
			sys.Crash(victim)
		}
		curA, curO := confirmedAffected.Load(), confirmedOthers.Load()
		marker := ""
		if s == crashAt {
			marker = fmt.Sprintf("   <- replica %d crashed", victim)
		}
		fmt.Printf("t=%ds  unaffected clients %4d pps | crashed rep's clients %4d pps%s\n",
			s, curO-lastO, curA-lastA, marker)
		lastA, lastO = curA, curO
	}
	close(stop)
	wg.Wait()
	fmt.Println("the system has no leader: only the crashed representative's own clients stopped;")
	fmt.Println("every other client kept settling payments throughout (contrast the paper's Figure 5 consensus curves)")
}
