// Robustness: the property the paper's Figures 5-7 demonstrate — Astro's
// throughput is unaffected by a crashed or slowed replica (beyond the
// clients it represented), because there is no leader.
//
// Phase 1 (crash-stop): ten clients pump payments through a 7-replica
// system with durable (WAL-backed) replicas; partway through we kill -9
// one replica, then restart it from its on-disk state. Watch per-second
// throughput: it dips only by the share of clients represented by the
// killed replica, and those clients resume once it is back. At the end
// the demo audits the safety story: FIFO exclusive logs on every replica,
// no double endorsements, and conservation of money across the crash.
//
// Phase 2 (Byzantine + chaos): a fresh 4-replica system runs under a
// seeded chaos profile (frame drop, corruption, duplication, extra
// delay) while one replica actively equivocates — conflicting PREPAREs
// for the same log slot, the double-spend attack — with a continuous
// invariant audit running the whole time. f = 1 faulty out of 4 is
// within the paper's tolerance, so the audit must come back clean.
//
// Phase 3 (scheduled partition + kill -9 + hardened clients): a durable
// 4-replica system arms a chaos *schedule* — the same mini-language
// cmd/astro-node's -chaos-schedule flag speaks — that partitions one
// replica away mid-run and heals it later, entirely on a timer. While
// the partition holds, a second replica is killed -9 and restarted from
// its WAL. Clients drive Client.PayReliable, the hardened retry loop
// (idempotent resubmission, jittered backoff, sequence resync), so every
// payment either settles exactly once or reports failure honestly; at
// the end, conservation must hold across partition, crash, and recovery.
//
// See RUNBOOK.md for the full chaos-engineering recipe these phases are
// built from.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"astro"
)

func main() {
	dataDir, err := os.MkdirTemp("", "astro-robustness-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	sys, err := astro.New(astro.Options{
		Replicas:   7,
		Genesis:    1 << 40,
		WANLatency: true,    // the paper's multi-region latency profile
		DataDir:    dataDir, // durable replicas: kill -9 is survivable
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const (
		nClients  = 10
		seconds   = 9
		killAt    = 3
		restartAt = 6
		sink      = astro.ClientID(100)
	)
	victim := sys.RepresentativeOf(1)

	// Count confirmations separately for clients of the doomed replica
	// (fate-sharing: they stall while it is down) and everyone else.
	var confirmedAffected, confirmedOthers atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	affected := 0
	for i := 0; i < nClients; i++ {
		cid := astro.ClientID(i + 1)
		counter := &confirmedOthers
		if sys.RepresentativeOf(cid) == victim {
			counter = &confirmedAffected
			affected++
		}
		c := sys.Client(cid)
		wg.Add(1)
		go func(c *astro.Client, counter *atomic.Uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := c.Pay(sink, 1)
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				if err := c.WaitConfirm(id, 2*time.Second); err != nil {
					// The representative may be down or freshly restarted:
					// resynchronize the sequence number and re-drive.
					c.SyncSeq(2 * time.Second)
				}
				counter.Add(1)
			}
		}(c, counter)
	}

	fmt.Printf("running %d clients over 7 durable replicas; kill -9 replica %d (representing %d clients) at t=%ds, restart at t=%ds\n",
		nClients, victim, affected, killAt, restartAt)

	lastA, lastO := uint64(0), uint64(0)
	for s := 1; s <= seconds; s++ {
		time.Sleep(time.Second)
		marker := ""
		switch s {
		case killAt:
			sys.Kill(victim)
			marker = fmt.Sprintf("   <- replica %d killed (-9, no flush)", victim)
		case restartAt:
			if err := sys.Restart(victim); err != nil {
				log.Fatal(err)
			}
			marker = fmt.Sprintf("   <- replica %d restarted from its WAL", victim)
		}
		curA, curO := confirmedAffected.Load(), confirmedOthers.Load()
		fmt.Printf("t=%ds  unaffected clients %4d pps | killed rep's clients %4d pps%s\n",
			s, curO-lastO, curA-lastA, marker)
		lastA, lastO = curA, curO
	}
	close(stop)
	wg.Wait()

	// Close the window between the restart-time state fetch and live
	// resubscription, then audit the safety story.
	var donor astro.ReplicaID
	for _, id := range sys.Replicas() {
		if id != victim {
			donor = id
			break
		}
	}
	if err := sys.AntiEntropy(victim, donor); err != nil {
		log.Fatal(err)
	}

	clients := make([]astro.ClientID, 0, nClients+1)
	for i := 0; i < nClients; i++ {
		clients = append(clients, astro.ClientID(i+1))
	}
	clients = append(clients, sink)
	genesisTotal := astro.Amount(len(clients)) << 40

	deadline := time.Now().Add(15 * time.Second)
	for {
		var total astro.Amount
		for _, c := range clients {
			total += sys.Balance(c)
		}
		if total == genesisTotal {
			fmt.Printf("conservation: every unit of the %d-client genesis is spendable after the crash\n", len(clients))
			break
		}
		if total > genesisTotal {
			log.Fatalf("money created: %d > %d", total, genesisTotal)
		}
		if time.Now().After(deadline) {
			log.Fatalf("conservation violated: spendable total %d, genesis %d", total, genesisTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, r := range sys.Replicas() {
		for _, c := range clients {
			if _, ok := sys.Audit(r, c); !ok {
				log.Fatalf("replica %d: client %d exclusive log failed audit", r, c)
			}
		}
	}
	fmt.Println("audit: FIFO exclusive logs on all 7 replicas, no equivocation, across a kill -9;")
	fmt.Println("the system has no leader: only the killed representative's own clients paused, and they resumed on restart")

	byzantineChaosPhase()
}

// byzantineChaosPhase drives phase 2: payments under an equivocating
// replica AND a lossy, corrupting, reordering network, with the
// invariant auditor sampling throughout.
func byzantineChaosPhase() {
	fmt.Println()
	sys, err := astro.New(astro.Options{
		Replicas: 4,
		Genesis:  1 << 40,
		Chaos: &astro.ChaosProfile{
			Seed:      42, // same seed, same chaos: runs are reproducible
			Drop:      0.02,
			Corrupt:   0.01,
			Duplicate: 0.02,
			DelayMin:  200 * time.Microsecond,
			DelayMax:  2 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const nClients = 4
	clients := make([]astro.ClientID, nClients)
	for i := range clients {
		clients[i] = astro.ClientID(i + 1)
	}
	// The attacker: a replica representing none of our spenders would be
	// too gentle — pick client 1's own representative.
	attacker := sys.RepresentativeOf(1)
	stopAudit := sys.StartAudit(clients, attacker)
	if err := sys.InjectFault(attacker, astro.FaultEquivocate); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: 4 replicas under chaos (2%% drop, 1%% corruption, 2%% duplication, up to 2ms extra delay);\n")
	fmt.Printf("replica %d equivocates on every PREPARE; continuous invariant audit armed\n", attacker)

	var confirmed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, cid := range clients {
		c := sys.Client(cid)
		wg.Add(1)
		go func(c *astro.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := c.Pay(astro.ClientID(100), 1)
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if err := c.WaitConfirm(id, 2*time.Second); err != nil {
					c.SyncSeq(2 * time.Second)
					continue
				}
				confirmed.Add(1)
			}
		}(c)
	}
	time.Sleep(3 * time.Second)
	close(stop)
	wg.Wait()

	report := stopAudit()
	chaosStats, err := sys.ChaosStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos applied: %d frames sent, %d dropped, %d corrupted, %d duplicated, %d delayed\n",
		chaosStats.Sent, chaosStats.Dropped, chaosStats.Corrupted, chaosStats.Duplicated, chaosStats.Delayed)
	fmt.Printf("confirmed %d payments; audit sampled %d times\n", confirmed.Load(), report.Samples)
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			fmt.Println("  VIOLATION:", v)
		}
		log.Fatal("invariants violated with f faulty — tolerance claim broken")
	}
	fmt.Println("audit: zero violations — one equivocating replica plus network chaos is within Astro's f-tolerance")

	scheduledPartitionPhase()
}

// scheduledPartitionPhase drives phase 3: a timed chaos schedule
// partitions replica 3 away and heals it, a kill -9/WAL-restart cycle
// hits replica 1 while the partition holds, and the clients ride through
// on the hardened retry loop.
func scheduledPartitionPhase() {
	fmt.Println()
	dataDir, err := os.MkdirTemp("", "astro-robustness3-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	sys, err := astro.New(astro.Options{
		Replicas: 4,
		Genesis:  1 << 40,
		DataDir:  dataDir,
		Chaos: &astro.ChaosProfile{
			Seed: 7,
			Rule: "drop=0.01,dup=0.01,delay=100us-800us",
			// Offsets are relative to New: partition replica 3 away at
			// t=1s, heal at t=3s. The same string works verbatim as
			// astro-node's -chaos-schedule across real TCP processes.
			Schedule: "1s:part=0 1 2|3;3s:heal",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const nClients = 4
	clients := make([]astro.ClientID, nClients)
	for i := range clients {
		clients[i] = astro.ClientID(i + 1)
	}
	stopAudit := sys.StartAudit(append(append([]astro.ClientID{}, clients...), 100))
	fmt.Println("phase 3: timed schedule partitions replica 3 at t=1s, heals at t=3s;")
	fmt.Println("replica 1 is killed -9 at t=1.5s and restarted from its WAL at t=2.5s; hardened clients throughout")

	var settled, gaveUp atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	pol := astro.RetryPolicy{Attempts: 10, Timeout: time.Second, Resync: true}
	for _, cid := range clients {
		c := sys.Client(cid)
		wg.Add(1)
		go func(c *astro.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.PayReliable(astro.ClientID(100), 1, pol); err != nil {
					gaveUp.Add(1)
				} else {
					settled.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(1500 * time.Millisecond)
	sys.Kill(1)
	time.Sleep(time.Second)
	if err := sys.Restart(1); err != nil {
		log.Fatal(err)
	}
	time.Sleep(2 * time.Second) // heal fires at t=3s; let traffic recover
	close(stop)
	wg.Wait()

	// Reconcile credits stranded by the partition and the crash, then
	// check conservation over everyone who ever held money.
	all := append(append([]astro.ClientID{}, clients...), 100)
	genesisTotal := astro.Amount(len(all)) << 40
	deadline := time.Now().Add(20 * time.Second)
	for {
		for _, id := range sys.Replicas() {
			for _, donor := range sys.Replicas() {
				if donor != id {
					if err := sys.AntiEntropy(id, donor); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		var total astro.Amount
		for _, c := range all {
			total += sys.Balance(c)
		}
		if total == genesisTotal {
			break
		}
		if total > genesisTotal {
			log.Fatalf("money created: %d > %d", total, genesisTotal)
		}
		if time.Now().After(deadline) {
			log.Fatalf("conservation violated after partition+crash: spendable %d, genesis %d", total, genesisTotal)
		}
		time.Sleep(100 * time.Millisecond)
	}

	report := stopAudit()
	fmt.Printf("settled %d payments (%d gave up honestly) across partition, kill -9, and WAL restart\n",
		settled.Load(), gaveUp.Load())
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			fmt.Println("  VIOLATION:", v)
		}
		log.Fatal("invariants violated — partition+crash tolerance claim broken")
	}
	fmt.Printf("audit: %d samples, zero violations; conservation holds — every unit of genesis is spendable again\n", report.Samples)
}
