// Smallbank: the paper's application benchmark (§VI-C2) on a sharded
// Astro II deployment. Each account owner holds a checking and a savings
// exclusive log, both in the same shard; cross-owner payments may cross
// shards, where they settle with a single CREDIT step instead of 2PC.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"astro"
)

const (
	shards   = 2
	perShard = 4
	owners   = 8
	seconds  = 5
)

// Account scheme: owner o -> checking xlog 2o, savings xlog 2o+1.
// ShardOf(client c) in the default topology is c mod shards, so pairing
// owners as (2o, 2o+1) does NOT colocate them; instead we colocate by
// picking owners so both accounts share parity... simpler: use owner IDs
// spaced so both logs map to the owner's shard.
func checking(o int) astro.ClientID { return astro.ClientID(2*o*shards + o%shards) }
func savings(o int) astro.ClientID  { return astro.ClientID((2*o+1)*shards + o%shards) }

func main() {
	sys, err := astro.New(astro.Options{
		Shards:  astro.Topology{NumShards: shards, PerShard: perShard},
		Genesis: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	top := sys.Topology()
	var ops, cross atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for o := 0; o < owners; o++ {
		chk := sys.Client(checking(o))
		sav := sys.Client(savings(o))
		wg.Add(1)
		go func(o int, chk, sav *astro.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(o) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var spender *astro.Client
				var beneficiary astro.ClientID
				switch rng.Intn(6) {
				case 0, 1: // TransactSavings / DepositChecking
					spender, beneficiary = sav, chk.ID()
				case 2: // Amalgamate
					spender, beneficiary = sav, chk.ID()
				case 3, 4: // SendPayment / WriteCheck to a partner
					partner := rng.Intn(owners)
					if partner == o {
						partner = (o + 1) % owners
					}
					spender, beneficiary = chk, checking(partner)
				default: // Query
					if _, err := chk.QueryBalance(5 * time.Second); err == nil {
						ops.Add(1)
					}
					continue
				}
				id, err := spender.Pay(beneficiary, astro.Amount(rng.Intn(10)+1))
				if err != nil {
					continue
				}
				if err := spender.WaitConfirm(id, 5*time.Second); err != nil {
					continue
				}
				ops.Add(1)
				if top.ShardOf(spender.ID()) != top.ShardOf(beneficiary) {
					cross.Add(1)
				}
			}
		}(o, chk, sav)
	}

	fmt.Printf("smallbank: %d owners (%d xlogs) over %d shards × %d replicas\n",
		owners, 2*owners, shards, perShard)
	time.Sleep(seconds * time.Second)
	close(stop)
	wg.Wait()

	total := ops.Load()
	fmt.Printf("completed %d transactions in %ds (%.0f tps)\n", total, seconds, float64(total)/seconds)
	fmt.Printf("cross-shard: %d (%.1f%%) — settled with one CREDIT step, no 2PC\n",
		cross.Load(), 100*float64(cross.Load())/float64(total))
}
