package astro

// Robustness surface of the facade: Byzantine fault injection, network
// chaos and partitions, and the always-on invariant auditor. Everything
// here wraps internal/sim and internal/transport/chaos without leaking
// their types beyond aliases.

import (
	"fmt"
	"time"

	"astro/internal/sim"
	"astro/internal/transport"
	"astro/internal/transport/chaos"
)

// Byzantine fault kinds accepted by InjectFault. Each arms a malicious
// wire behavior on one replica; correct replicas tolerate any f of them
// with zero invariant violations.
const (
	// FaultEquivocate sends conflicting PREPAREs for the same log slot to
	// different peers — the double-spend attack BRB exists to stop.
	FaultEquivocate = string(sim.FaultEquivocate)
	// FaultWithholdCommits suppresses outbound COMMITs so peers must
	// complete certificates from the other 2f+1 replicas.
	FaultWithholdCommits = string(sim.FaultWithholdCommits)
	// FaultForgeRefs corrupts chain-by-digest reference digests on the
	// wire, forcing NACK fallbacks and forged-reference rejections.
	FaultForgeRefs = string(sim.FaultForgeRefs)
	// FaultNackStorm answers every reference-form message with a NACK,
	// probing the bounded-retransmit guarantee.
	FaultNackStorm = string(sim.FaultNackStorm)
	// FaultStaleView spams stale-view and forged-install reconfiguration
	// messages at the membership managers.
	FaultStaleView = string(sim.FaultStaleView)
)

// ChaosProfile configures a seeded chaos controller interposed on every
// link of the deployment. All probabilities are per frame in [0,1]; the
// seed fixes every draw, so a chaotic run is reproducible.
type ChaosProfile struct {
	Seed      uint64
	Drop      float64       // silently drop the frame
	Corrupt   float64       // flip one byte of the frame
	Duplicate float64       // deliver the frame twice
	Reorder   float64       // hold a delayed frame back further
	DelayMin  time.Duration // uniform extra delay lower bound
	DelayMax  time.Duration // uniform extra delay upper bound

	// Rule, when non-empty, replaces the per-field probabilities above
	// with the chaos mini-language — the same dialect cmd/astro-node's
	// -chaos flag speaks, so a rule from a runbook drops in verbatim:
	//
	//	"drop=0.03,corrupt=0.01,dup=0.02,delay=200us-2ms"
	Rule string
	// Schedule arms timed phases — rule changes, partitions, heals —
	// with offsets relative to New (cmd/astro-node's -chaos-schedule):
	//
	//	"300ms:part=0 1|2 3;1200ms:heal;1500ms:drop=0.05;3s:clear"
	//
	// Unfired phases are cancelled by Close.
	Schedule string
}

// ChaosStats counts the perturbations a chaos controller has applied.
type ChaosStats = chaos.Stats

// InvariantReport is the result of an audit window: how many sampling
// passes ran and every invariant violation observed, formatted
// "[invariant] replica R client C: detail".
type InvariantReport struct {
	Samples    int
	Violations []string
}

// InjectFault arms a Byzantine wire behavior (one of the Fault…
// constants) on a replica. The replica keeps running its honest protocol
// underneath; the behavior interposes on its frames. At most one behavior
// is armed per replica — injecting again replaces it.
func (s *System) InjectFault(id ReplicaID, kind string) error {
	return s.cluster.ArmFault(id, sim.FaultKind(kind))
}

// ClearFault disarms a replica's Byzantine behavior.
func (s *System) ClearFault(id ReplicaID) error {
	return s.cluster.SetBehavior(id, nil)
}

// Partition splits the replicas into isolated groups: frames between
// different groups are dropped, frames within a group flow normally.
// Replicas not named in any group are unaffected. Heal with HealPartition.
func (s *System) Partition(groups ...[]ReplicaID) {
	nodeGroups := make([][]transport.NodeID, len(groups))
	for i, g := range groups {
		for _, id := range g {
			nodeGroups[i] = append(nodeGroups[i], transport.ReplicaNode(id))
		}
	}
	s.cluster.Net.Partition(nodeGroups...)
}

// HealPartition removes a partition installed by Partition.
func (s *System) HealPartition() { s.cluster.Net.HealPartition() }

// SetLinkDelay adds a fixed extra one-way delay on the directed link
// from one replica to another — asymmetric degradation, like tc netem on
// a single direction. Zero removes the override.
func (s *System) SetLinkDelay(from, to ReplicaID, d time.Duration) {
	s.cluster.Net.SetLinkDelay(transport.ReplicaNode(from), transport.ReplicaNode(to), d)
}

// ChaosStats returns the perturbation counters of the chaos controller
// configured via Options.Chaos, or an error if the system runs without
// chaos.
func (s *System) ChaosStats() (ChaosStats, error) {
	if s.chaos == nil {
		return ChaosStats{}, fmt.Errorf("astro: system built without Options.Chaos")
	}
	return s.chaos.Stats(), nil
}

// StartAudit begins continuous invariant auditing over the given clients:
// conservation-of-money, per-client FIFO logs, no duplicate settlements,
// and cross-replica agreement, sampled from outside the protocol. Replicas
// listed as faulty are excluded from the correctness checks (their state
// is allowed to lie). The returned stop function ends the audit and
// returns the report; crash-stopped replicas are skipped per sample.
func (s *System) StartAudit(clients []ClientID, faulty ...ReplicaID) (stop func() InvariantReport) {
	fm := make(map[ReplicaID]bool, len(faulty))
	for _, id := range faulty {
		fm[id] = true
	}
	aud := s.cluster.NewAuditor(sim.AuditorConfig{
		Clients: clients,
		Genesis: s.genesis,
		Faulty:  fm,
	})
	aud.Start()
	return func() InvariantReport {
		rep := aud.Stop()
		out := InvariantReport{Samples: rep.Samples}
		for _, v := range rep.Violations {
			out.Violations = append(out.Violations, v.String())
		}
		return out
	}
}
